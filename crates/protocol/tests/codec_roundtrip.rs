//! Property coverage for the wire codec: every encodable [`Wire`],
//! [`Event`] and [`Effect`] value round-trips bit-exactly through
//! `encode_* → decode_*`, and every encoding is self-delimiting (no
//! prefix of a valid encoding decodes).
//!
//! This suite is the guard rail the codec exists for: a future socket
//! transport gets framed bytes whose fidelity was pinned here long before
//! the first connection is opened.

use polystyrene::prelude::{DataPoint, PointId};
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_protocol::codec::{
    decode_effect, decode_event, decode_wire, encode_effect, encode_event, encode_wire,
};
use polystyrene_protocol::wire::{Channel, Effect, Event, QueryItem, QueryReplyItem, Wire};
use proptest::collection::vec;
use proptest::prelude::*;

type Pos = [f64; 2];

fn pos_strategy() -> impl Strategy<Value = Pos> {
    [-1e6..1e6f64, -1e6..1e6f64]
}

fn descriptor_strategy() -> impl Strategy<Value = Descriptor<Pos>> {
    ((0..10_000u64, pos_strategy()), 0..500u32)
        .prop_map(|((id, pos), age)| Descriptor::with_age(NodeId::new(id), pos, age))
}

fn point_strategy() -> impl Strategy<Value = DataPoint<Pos>> {
    (0..10_000u64, pos_strategy()).prop_map(|(id, pos)| DataPoint::new(PointId::new(id), pos))
}

fn channel_strategy() -> impl Strategy<Value = Channel> {
    (0..5u8).prop_map(|tag| match tag {
        0 => Channel::PeerSampling,
        1 => Channel::Topology,
        2 => Channel::Migration,
        3 => Channel::Backup,
        _ => Channel::Heartbeat,
    })
}

fn query_item_strategy() -> impl Strategy<Value = QueryItem<Pos>> {
    (
        0..10_000u64,
        0..10_000u64,
        pos_strategy(),
        0..64u32,
        0..64u32,
    )
        .prop_map(|(qid, origin, key, ttl, hops)| QueryItem {
            qid,
            origin: NodeId::new(origin),
            key,
            ttl,
            hops,
        })
}

fn reply_item_strategy() -> impl Strategy<Value = QueryReplyItem<Pos>> {
    (0..10_000u64, 0..64u32, pos_strategy()).prop_map(|(qid, hops, pos)| QueryReplyItem {
        qid,
        hops,
        pos,
    })
}

fn wire_strategy() -> impl Strategy<Value = Wire<Pos>> {
    (
        (
            0..=12u8,
            vec(descriptor_strategy(), 0..6),
            vec(descriptor_strategy(), 0..6),
        ),
        (
            vec(point_strategy(), 0..6),
            pos_strategy(),
            (0..1_000usize, 0..1_000usize, 0..2u8),
        ),
        (
            vec(query_item_strategy(), 0..6),
            vec(reply_item_strategy(), 0..6),
        ),
    )
        .prop_map(
            |((tag, ds1, ds2), (points, pos, (a, b, busy)), (queries, replies))| match tag {
                0 => Wire::RpsRequest { descriptors: ds1 },
                1 => Wire::RpsReply {
                    sent: ds1,
                    descriptors: ds2,
                },
                2 => Wire::TManRequest {
                    from_pos: pos,
                    descriptors: ds1,
                },
                3 => Wire::TManReply { descriptors: ds1 },
                4 => Wire::MigrationRequest {
                    xid: a as u64,
                    from_pos: pos,
                    guests: points,
                },
                5 => Wire::MigrationReply {
                    xid: b as u64,
                    points,
                    busy: busy == 1,
                    pulled: a,
                    pushed: b,
                },
                6 => Wire::MigrationAck { xid: a as u64 },
                7 => Wire::BackupPush {
                    points,
                    added_points: a,
                    removed_ids: b,
                },
                8 => Wire::Heartbeat,
                9 => Wire::Query {
                    qid: a as u64,
                    origin: NodeId::new(b as u64),
                    key: pos,
                    ttl: busy as u32 + 1,
                    hops: a as u32 % 64,
                },
                10 => Wire::QueryReply {
                    qid: b as u64,
                    hops: a as u32 % 64,
                    pos,
                },
                11 => Wire::QueryBatch { queries },
                _ => Wire::QueryReplyBatch { replies },
            },
        )
}

fn event_strategy() -> impl Strategy<Value = Event<Pos>> {
    (
        (0..3u8, 0..10_000u64, wire_strategy()),
        (channel_strategy(), 0..2u8, pos_strategy()),
    )
        .prop_map(|((tag, id, wire), (channel, with_pos, pos))| match tag {
            0 => Event::Message {
                from: NodeId::new(id),
                wire,
            },
            1 => Event::ProbeOk {
                peer: NodeId::new(id),
                channel,
                pos: (with_pos == 1).then_some(pos),
            },
            _ => Event::PeerUnreachable {
                peer: NodeId::new(id),
                channel,
            },
        })
}

fn effect_strategy() -> impl Strategy<Value = Effect<Pos>> {
    (0..2u8, 0..10_000u64, wire_strategy(), channel_strategy()).prop_map(
        |(tag, id, wire, channel)| match tag {
            0 => Effect::Probe {
                peer: NodeId::new(id),
                channel,
            },
            _ => Effect::Send {
                to: NodeId::new(id),
                wire,
            },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wire_round_trips(wire in wire_strategy()) {
        let bytes = encode_wire(&wire);
        let back = decode_wire::<Pos>(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&wire));
    }

    #[test]
    fn event_round_trips(event in event_strategy()) {
        let bytes = encode_event(&event);
        let back = decode_event::<Pos>(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&event));
    }

    #[test]
    fn effect_round_trips(effect in effect_strategy()) {
        let bytes = encode_effect(&effect);
        let back = decode_effect::<Pos>(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&effect));
    }

    #[test]
    fn no_strict_prefix_of_a_wire_decodes(wire in wire_strategy()) {
        let bytes = encode_wire(&wire);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_wire::<Pos>(&bytes[..cut]).is_err(),
                "strict prefix of {} bytes decoded", cut
            );
        }
    }

    #[test]
    fn one_dimensional_points_round_trip(id in 0..100u64, x in -1e9..1e9f64) {
        let wire: Wire<f64> = Wire::MigrationRequest {
            xid: id,
            from_pos: x,
            guests: std::vec![DataPoint::new(PointId::new(id), -x)],
        };
        let bytes = encode_wire(&wire);
        let back = decode_wire::<f64>(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&wire));
    }
}

// ---------------------------------------------------------------------
// Decoder fuzzing: raw bytes off a socket are attacker-controlled. The
// decoders must return `Err` (never panic, never allocate unboundedly)
// on every input that is not a valid encoding.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(bytes in vec(0..=255u8, 0..512)) {
        // Either outcome is fine; returning at all is the property. A
        // length-prefix attack (huge declared count) must be rejected by
        // the remaining-input cap before any allocation happens — the
        // 512-byte inputs here would otherwise OOM on a u64::MAX prefix.
        let _ = decode_wire::<f64>(&bytes);
        let _ = decode_wire::<[f64; 2]>(&bytes);
        let _ = decode_event::<f64>(&bytes);
        let _ = decode_event::<[f64; 2]>(&bytes);
        let _ = decode_effect::<f64>(&bytes);
        let _ = decode_effect::<[f64; 2]>(&bytes);
    }

    #[test]
    fn corrupted_valid_encodings_never_panic(
        wire in wire_strategy(),
        at in 0..4096usize,
        bit in 0..8u8,
    ) {
        // A single bit flipped anywhere in a *valid* encoding exercises
        // the deep decoder paths (mid-sequence tags, length prefixes,
        // truncation boundaries) that uniformly random bytes rarely
        // reach past the version check.
        let mut bytes = encode_wire(&wire);
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        let _ = decode_wire::<Pos>(&bytes);
        let _ = decode_event::<Pos>(&bytes);
        let _ = decode_effect::<Pos>(&bytes);
    }

    #[test]
    fn truncated_valid_encodings_never_panic_and_never_decode(
        event in event_strategy(),
        cut in 0..4096usize,
    ) {
        let bytes = encode_event(&event);
        let cut = cut % bytes.len();
        prop_assert!(decode_event::<Pos>(&bytes[..cut]).is_err());
    }
}
