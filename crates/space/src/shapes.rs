//! Target-shape generators.
//!
//! "The original positions of all nodes in the system define the target
//! shape that the system should maintain" (paper Sec. III-A). These
//! generators produce those original positions: the 80×40 torus grid of the
//! paper's evaluation, the parallel offset grid used for the re-injection
//! phase (Sec. IV-A, Phase 3), and a few other classic overlay shapes.

use rand::Rng;

/// Regular grid of `cols × rows` points with the given `step`, starting at
/// the origin — the paper's torus shape ("3200 nodes placed on a regular
/// 80 × 40 grid … distance between two neighboring nodes on the grid is set
/// to 1", Sec. IV-A). Row-major order.
///
/// # Example
///
/// ```
/// use polystyrene_space::shapes;
///
/// let grid = shapes::torus_grid(80, 40, 1.0);
/// assert_eq!(grid.len(), 3200);
/// assert_eq!(grid[0], [0.0, 0.0]);
/// assert_eq!(grid[1], [1.0, 0.0]);
/// assert_eq!(grid[80], [0.0, 1.0]);
/// ```
pub fn torus_grid(cols: usize, rows: usize, step: f64) -> Vec<[f64; 2]> {
    let mut pts = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            pts.push([c as f64 * step, r as f64 * step]);
        }
    }
    pts
}

/// The parallel grid used for Phase 3 re-injection: same lattice as
/// [`torus_grid`] but offset by half a step on both axes, so fresh nodes
/// sit "on a grid parallel to the original one" (Sec. IV-A).
pub fn torus_grid_offset(cols: usize, rows: usize, step: f64) -> Vec<[f64; 2]> {
    let half = step / 2.0;
    torus_grid(cols, rows, step)
        .into_iter()
        .map(|[x, y]| [x + half, y + half])
        .collect()
}

/// `n` points evenly spaced on a ring of the given circumference
/// (1-D modular abscissae for [`crate::ring::Ring`]).
pub fn ring_points(n: usize, circumference: f64) -> Vec<f64> {
    (0..n)
        .map(|i| i as f64 * circumference / n as f64)
        .collect()
}

/// `n` points evenly spaced on a circle of radius `radius` centered at the
/// origin, embedded in the Euclidean plane.
pub fn circle_points(n: usize, radius: f64) -> Vec<[f64; 2]> {
    (0..n)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            [radius * a.cos(), radius * a.sin()]
        })
        .collect()
}

/// `n` points evenly spaced on the segment from `from` to `to` (inclusive
/// endpoints when `n >= 2`).
pub fn line_points(n: usize, from: [f64; 2], to: [f64; 2]) -> Vec<[f64; 2]> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![from];
    }
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            [
                from[0] + t * (to[0] - from[0]),
                from[1] + t * (to[1] - from[1]),
            ]
        })
        .collect()
}

/// `n` points drawn uniformly at random from the rectangle
/// `[0, width) × [0, height)`.
pub fn uniform_rect<R: Rng + ?Sized>(
    n: usize,
    width: f64,
    height: f64,
    rng: &mut R,
) -> Vec<[f64; 2]> {
    (0..n)
        .map(|_| [rng.random_range(0.0..width), rng.random_range(0.0..height)])
        .collect()
}

/// Regular 3-D grid of `nx × ny × nz` points with the given step — the
/// "3D point" data space of the paper's system model.
pub fn cube_grid(nx: usize, ny: usize, nz: usize, step: f64) -> Vec<[f64; 3]> {
    let mut pts = Vec::with_capacity(nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                pts.push([x as f64 * step, y as f64 * step, z as f64 * step]);
            }
        }
    }
    pts
}

/// Predicate selecting the right half of a `width`-wide torus — the region
/// killed by the paper's catastrophic failure ("all the 1600 nodes located
/// in one half of the torus crash", Sec. IV-A Phase 2).
pub fn in_right_half(width: f64) -> impl Fn(&[f64; 2]) -> bool {
    move |p| p[0] >= width / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_grid_has_3200_points() {
        let g = torus_grid(80, 40, 1.0);
        assert_eq!(g.len(), 3200);
        assert_eq!(g[0], [0.0, 0.0]);
        assert_eq!(*g.last().unwrap(), [79.0, 39.0]);
    }

    #[test]
    fn grid_is_row_major() {
        let g = torus_grid(3, 2, 2.0);
        assert_eq!(
            g,
            vec![
                [0.0, 0.0],
                [2.0, 0.0],
                [4.0, 0.0],
                [0.0, 2.0],
                [2.0, 2.0],
                [4.0, 2.0]
            ]
        );
    }

    #[test]
    fn offset_grid_interleaves_the_original() {
        let g = torus_grid_offset(2, 2, 1.0);
        assert_eq!(g[0], [0.5, 0.5]);
        assert_eq!(g[3], [1.5, 1.5]);
    }

    #[test]
    fn ring_points_are_evenly_spaced() {
        let pts = ring_points(4, 100.0);
        assert_eq!(pts, vec![0.0, 25.0, 50.0, 75.0]);
    }

    #[test]
    fn circle_points_lie_on_the_circle() {
        for p in circle_points(16, 5.0) {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((r - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn line_endpoints_and_degenerate_cases() {
        assert!(line_points(0, [0.0, 0.0], [1.0, 1.0]).is_empty());
        assert_eq!(line_points(1, [2.0, 3.0], [9.0, 9.0]), vec![[2.0, 3.0]]);
        let pts = line_points(3, [0.0, 0.0], [2.0, 4.0]);
        assert_eq!(pts, vec![[0.0, 0.0], [1.0, 2.0], [2.0, 4.0]]);
    }

    #[test]
    fn uniform_rect_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for p in uniform_rect(500, 80.0, 40.0, &mut rng) {
            assert!((0.0..80.0).contains(&p[0]));
            assert!((0.0..40.0).contains(&p[1]));
        }
    }

    #[test]
    fn cube_grid_size_and_corners() {
        let g = cube_grid(2, 3, 4, 1.5);
        assert_eq!(g.len(), 24);
        assert_eq!(g[0], [0.0, 0.0, 0.0]);
        assert_eq!(*g.last().unwrap(), [1.5, 3.0, 4.5]);
    }

    #[test]
    fn right_half_predicate_splits_the_paper_grid_in_two() {
        let g = torus_grid(80, 40, 1.0);
        let pred = in_right_half(80.0);
        let killed = g.iter().filter(|p| pred(p)).count();
        assert_eq!(killed, 1600);
    }
}
