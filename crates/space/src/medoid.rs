//! Medoid computation — Polystyrene's projection operator.
//!
//! A node's published position is "the guest point that minimizes the sum
//! of square distances to other guest points" (paper Sec. III-C). Unlike
//! the centroid, the medoid is always a member of the input set and is
//! well-defined in any metric space, including modular ones where division
//! is ill-defined.

use crate::point::MetricSpace;
use rand::seq::index::sample;
use rand::Rng;

/// Sum of squared distances from `q` to every point of `points`.
///
/// This is the objective minimized by [`medoid`], and also the in-cluster
/// cost the paper uses to judge partitions in Sec. III-F.
pub fn sum_sq_to<S: MetricSpace>(space: &S, q: &S::Point, points: &[S::Point]) -> f64 {
    points.iter().map(|p| space.distance_sq(q, p)).sum()
}

/// Index of the medoid of `points`, or `None` if `points` is empty.
///
/// Runs in `O(n^2)` distance evaluations. Ties are broken towards the
/// lowest index, which keeps the operation deterministic.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// let pts = [[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]];
/// assert_eq!(medoid_index(&Euclidean2, &pts), Some(1));
/// ```
pub fn medoid_index<S: MetricSpace>(space: &S, points: &[S::Point]) -> Option<usize> {
    medoid_index_by(space, points, |p| p)
}

/// [`medoid_index`] over any item type through a position accessor, so a
/// caller holding wrapped points (e.g. id-tagged data points) can find
/// the medoid without first collecting positions into a temporary `Vec`.
/// Identical objective, iteration order and tie-breaking.
pub fn medoid_index_by<S: MetricSpace, T>(
    space: &S,
    items: &[T],
    pos: impl Fn(&T) -> &S::Point,
) -> Option<usize> {
    if items.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_cost = f64::INFINITY;
    for (i, candidate) in items.iter().enumerate() {
        let cost: f64 = items
            .iter()
            .map(|p| space.distance_sq(pos(candidate), pos(p)))
            .sum();
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    Some(best)
}

/// The medoid of `points`, or `None` if `points` is empty.
///
/// See [`medoid_index`] for complexity and tie-breaking.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// let t = Torus2::new(16.0, 16.0);
/// // On a torus the cluster {15, 0, 1} straddles the seam; the medoid is
/// // the middle point 0, which a naive centroid ((15+0+1)/3 ≈ 5.3) misses.
/// let pts = [[15.0, 0.0], [0.0, 0.0], [1.0, 0.0]];
/// assert_eq!(medoid(&t, &pts), Some(&[0.0, 0.0]));
/// ```
pub fn medoid<'a, S: MetricSpace>(space: &S, points: &'a [S::Point]) -> Option<&'a S::Point> {
    medoid_index(space, points).map(|i| &points[i])
}

/// Approximate medoid for large point sets: evaluates the objective only on
/// a random sample of `candidates` candidate points (still against the full
/// set), trading exactness for `O(candidates · n)` cost.
///
/// Falls back to the exact computation when `points.len() <= candidates`.
/// Returns `None` if `points` is empty.
pub fn medoid_index_sampled<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    points: &[S::Point],
    candidates: usize,
    rng: &mut R,
) -> Option<usize> {
    medoid_index_sampled_by(space, points, |p| p, candidates, rng)
}

/// [`medoid_index_sampled`] through a position accessor — the sampled
/// counterpart of [`medoid_index_by`], with the identical candidate draw
/// sequence for a given `rng` state.
pub fn medoid_index_sampled_by<S: MetricSpace, T, R: Rng + ?Sized>(
    space: &S,
    items: &[T],
    pos: impl Fn(&T) -> &S::Point,
    candidates: usize,
    rng: &mut R,
) -> Option<usize> {
    if items.len() <= candidates {
        return medoid_index_by(space, items, pos);
    }
    let picks = sample(rng, items.len(), candidates);
    let mut best = None;
    let mut best_cost = f64::INFINITY;
    for i in picks {
        let cost: f64 = items
            .iter()
            .map(|p| space.distance_sq(pos(&items[i]), pos(p)))
            .sum();
        if cost < best_cost {
            best_cost = cost;
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::Euclidean2;
    use crate::ring::Ring;
    use crate::torus::Torus2;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_has_no_medoid() {
        assert_eq!(medoid_index(&Euclidean2, &[]), None);
        assert_eq!(medoid(&Euclidean2, &[]), None);
    }

    #[test]
    fn singleton_is_its_own_medoid() {
        assert_eq!(medoid(&Euclidean2, &[[3.0, 4.0]]), Some(&[3.0, 4.0]));
    }

    #[test]
    fn picks_central_point_on_a_line() {
        let pts = [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0], [100.0, 0.0]];
        // The squared objective makes the outlier dominate: the medoid is
        // the cluster point closest to it (cost 9423 at x=3 vs 9610 at x=2),
        // but it must stay a member of the set.
        let m = medoid_index(&Euclidean2, &pts).unwrap();
        assert_eq!(m, 3);
    }

    #[test]
    fn wraps_correctly_on_ring() {
        let r = Ring::new(16.0);
        // Cluster straddling the modular seam.
        let pts = [15.0, 0.0, 1.0];
        assert_eq!(medoid(&r, &pts), Some(&0.0));
    }

    #[test]
    fn wraps_correctly_on_torus() {
        let t = Torus2::new(16.0, 16.0);
        let pts = [[15.0, 15.0], [0.0, 0.0], [1.0, 1.0]];
        assert_eq!(medoid(&t, &pts), Some(&[0.0, 0.0]));
    }

    #[test]
    fn tie_breaks_to_lowest_index() {
        // Two points: each has the same cost (d^2 to the other).
        let pts = [[0.0, 0.0], [1.0, 0.0]];
        assert_eq!(medoid_index(&Euclidean2, &pts), Some(0));
    }

    #[test]
    fn sampled_equals_exact_for_small_inputs() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts = [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]];
        assert_eq!(
            medoid_index_sampled(&Euclidean2, &pts, 10, &mut rng),
            medoid_index(&Euclidean2, &pts)
        );
    }

    #[test]
    fn sampled_returns_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts: [[f64; 2]; 0] = [];
        assert_eq!(medoid_index_sampled(&Euclidean2, &pts, 4, &mut rng), None);
    }

    #[test]
    fn sampled_cost_close_to_exact_on_cluster() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut pts = Vec::new();
        for i in 0..200 {
            let a = i as f64 * 0.1;
            pts.push([a.cos() * 5.0, a.sin() * 5.0]);
        }
        let exact = medoid_index(&Euclidean2, &pts).unwrap();
        let approx = medoid_index_sampled(&Euclidean2, &pts, 40, &mut rng).unwrap();
        let exact_cost = sum_sq_to(&Euclidean2, &pts[exact], &pts);
        let approx_cost = sum_sq_to(&Euclidean2, &pts[approx], &pts);
        // The sampled medoid is near-optimal on a dense ring of points.
        assert!(approx_cost <= exact_cost * 1.25);
    }

    fn pt2() -> impl Strategy<Value = [f64; 2]> {
        [-100.0..100.0, -100.0..100.0].prop_map(|[x, y]| [x, y])
    }

    proptest! {
        #[test]
        fn medoid_is_a_member(pts in proptest::collection::vec(pt2(), 1..30)) {
            let m = medoid(&Euclidean2, &pts).unwrap();
            prop_assert!(pts.contains(m));
        }

        #[test]
        fn medoid_minimizes_objective(pts in proptest::collection::vec(pt2(), 1..25)) {
            let m = medoid(&Euclidean2, &pts).unwrap();
            let mcost = sum_sq_to(&Euclidean2, m, &pts);
            for p in &pts {
                prop_assert!(mcost <= sum_sq_to(&Euclidean2, p, &pts) + 1e-9);
            }
        }

        #[test]
        fn sampled_medoid_is_a_member(
            pts in proptest::collection::vec(pt2(), 1..60),
            seed in 0u64..1000,
            candidates in 1usize..10,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let i = medoid_index_sampled(&Euclidean2, &pts, candidates, &mut rng).unwrap();
            prop_assert!(i < pts.len());
        }
    }
}
