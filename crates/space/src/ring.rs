//! A 1-D modular ring — the simplest modular space, matching the ring
//! overlays (Pastry, Chord) the paper repeatedly cites as target shapes
//! ("e.g. a torus, ring, or hypercube", abstract).

use crate::point::MetricSpace;

/// A circle of the given circumference: `R / (circumference·Z)` with the
/// induced metric. Points are plain `f64` curvilinear abscissae.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// let ring = Ring::new(100.0);
/// assert_eq!(ring.distance(&1.0, &99.0), 2.0); // wraps around
/// assert_eq!(ring.distance(&10.0, &30.0), 20.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ring {
    circumference: f64,
}

impl Ring {
    /// Creates a ring of the given circumference.
    ///
    /// # Panics
    ///
    /// Panics if `circumference` is not strictly positive and finite.
    pub fn new(circumference: f64) -> Self {
        assert!(
            circumference > 0.0 && circumference.is_finite(),
            "ring circumference must be positive and finite, got {circumference}"
        );
        Self { circumference }
    }

    /// The circumference of the ring.
    pub fn circumference(&self) -> f64 {
        self.circumference
    }

    /// Maps an abscissa into `[0, circumference)`.
    pub fn normalize(&self, p: f64) -> f64 {
        p.rem_euclid(self.circumference)
    }

    /// The maximum possible distance (half the circumference).
    pub fn max_distance(&self) -> f64 {
        self.circumference / 2.0
    }
}

impl MetricSpace for Ring {
    type Point = f64;

    fn distance(&self, a: &f64, b: &f64) -> f64 {
        let d = (a - b).rem_euclid(self.circumference);
        d.min(self.circumference - d)
    }

    fn grid_spec(&self, target_cells: usize) -> Option<crate::point::GridSpec> {
        let nx = target_cells.max(1);
        Some(crate::point::GridSpec {
            nx,
            ny: 1,
            cell_w: self.circumference / nx as f64,
            cell_h: 0.0,
            wrap_x: true,
            wrap_y: false,
        })
    }

    fn grid_cell(&self, p: &f64, spec: &crate::point::GridSpec) -> Option<(usize, usize)> {
        let cx = ((self.normalize(*p) / spec.cell_w) as usize).min(spec.nx - 1);
        Some((cx, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wraps() {
        let r = Ring::new(100.0);
        assert_eq!(r.distance(&1.0, &99.0), 2.0);
        assert_eq!(r.distance(&0.0, &50.0), 50.0);
        assert_eq!(r.distance(&0.0, &51.0), 49.0);
    }

    #[test]
    fn normalize() {
        let r = Ring::new(10.0);
        assert_eq!(r.normalize(12.5), 2.5);
        assert_eq!(r.normalize(-1.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "circumference must be positive")]
    fn rejects_nonpositive_circumference() {
        let _ = Ring::new(0.0);
    }

    proptest! {
        #[test]
        fn metric_axioms(a in 0.0..100.0f64, b in 0.0..100.0f64, c in 0.0..100.0f64) {
            let r = Ring::new(100.0);
            prop_assert!(r.distance(&a, &a).abs() < 1e-12);
            prop_assert!((r.distance(&a, &b) - r.distance(&b, &a)).abs() < 1e-9);
            prop_assert!(r.distance(&a, &c) <= r.distance(&a, &b) + r.distance(&b, &c) + 1e-9);
            prop_assert!(r.distance(&a, &b) <= r.max_distance() + 1e-12);
        }
    }
}
