//! A discrete set space with the Jaccard distance.
//!
//! The paper's system model allows data points to be "a list of items"
//! taken from "the power-set of items" (Sec. III-A) — the profile spaces of
//! gossip-based social networks and recommenders (Gossple, WhatsUp). This
//! module provides that space so the protocol stack can be exercised on a
//! genuinely non-geometric metric space.

use crate::point::MetricSpace;
use std::collections::BTreeSet;

/// A data point in the power-set space: a set of item identifiers
/// (e.g. liked news items, profile keywords).
pub type ItemSet = BTreeSet<u32>;

/// The power-set of items equipped with the Jaccard distance
/// `d(A, B) = 1 − |A ∩ B| / |A ∪ B|` (with `d(∅, ∅) = 0`).
///
/// The Jaccard distance is a true metric, so every Polystyrene mechanism
/// (medoid projection, diameter splits, …) applies unchanged.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// let s = JaccardSpace;
/// let a: ItemSet = [1, 2, 3].into_iter().collect();
/// let b: ItemSet = [2, 3, 4].into_iter().collect();
/// assert!((s.distance(&a, &b) - 0.5).abs() < 1e-12); // |∩|=2, |∪|=4
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct JaccardSpace;

impl MetricSpace for JaccardSpace {
    type Point = ItemSet;

    fn distance(&self, a: &ItemSet, b: &ItemSet) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(b).count() as f64;
        let union = (a.len() + b.len()) as f64 - inter;
        1.0 - inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(items: &[u32]) -> ItemSet {
        items.iter().copied().collect()
    }

    #[test]
    fn identical_sets_are_at_distance_zero() {
        assert_eq!(JaccardSpace.distance(&set(&[1, 2]), &set(&[1, 2])), 0.0);
    }

    #[test]
    fn disjoint_sets_are_at_distance_one() {
        assert_eq!(JaccardSpace.distance(&set(&[1]), &set(&[2])), 1.0);
    }

    #[test]
    fn both_empty_is_zero() {
        assert_eq!(JaccardSpace.distance(&set(&[]), &set(&[])), 0.0);
    }

    #[test]
    fn empty_vs_nonempty_is_one() {
        assert_eq!(JaccardSpace.distance(&set(&[]), &set(&[7])), 1.0);
    }

    #[test]
    fn half_overlap() {
        let d = JaccardSpace.distance(&set(&[1, 2, 3]), &set(&[2, 3, 4]));
        assert!((d - 0.5).abs() < 1e-12);
    }

    fn itemset() -> impl Strategy<Value = ItemSet> {
        proptest::collection::btree_set(0u32..30, 0..12)
    }

    proptest! {
        #[test]
        fn bounded_in_unit_interval(a in itemset(), b in itemset()) {
            let d = JaccardSpace.distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn symmetry(a in itemset(), b in itemset()) {
            prop_assert_eq!(JaccardSpace.distance(&a, &b), JaccardSpace.distance(&b, &a));
        }

        #[test]
        fn identity_of_indiscernibles(a in itemset(), b in itemset()) {
            let d = JaccardSpace.distance(&a, &b);
            if a == b {
                prop_assert_eq!(d, 0.0);
            } else {
                prop_assert!(d > 0.0);
            }
        }

        #[test]
        fn triangle_inequality(a in itemset(), b in itemset(), c in itemset()) {
            let ac = JaccardSpace.distance(&a, &c);
            let ab = JaccardSpace.distance(&a, &b);
            let bc = JaccardSpace.distance(&b, &c);
            prop_assert!(ac <= ab + bc + 1e-12);
        }
    }
}
