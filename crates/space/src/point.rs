//! The [`MetricSpace`] abstraction.
//!
//! Polystyrene's system model (paper Sec. III-A) places a single constraint
//! on the data space: a distance must be computable between any two data
//! points. Everything in this workspace — T-Man ranking, medoid projection,
//! diameter splits, homogeneity metrics — is generic over this trait, which
//! is what lets the same protocol organize a torus of 2-D coordinates or a
//! collection of user profiles (item sets).

/// A metric space over a point type `Self::Point`.
///
/// The space object carries the parameters of the space (e.g. the extents of
/// a torus), so points themselves stay plain data (`[f64; 2]`, `f64`,
/// bit sets, …) and can be exchanged between nodes cheaply.
///
/// Implementations must satisfy the metric axioms for the protocol's
/// convergence arguments to hold:
///
/// * `d(a, a) == 0`,
/// * symmetry: `d(a, b) == d(b, a)`,
/// * triangle inequality: `d(a, c) <= d(a, b) + d(b, c)`.
///
/// These are checked by property-based tests for every implementation in
/// this crate.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// fn farthest_from<S: MetricSpace>(space: &S, origin: &S::Point, candidates: &[S::Point])
///     -> Option<usize>
/// {
///     (0..candidates.len()).max_by(|&i, &j| {
///         space
///             .distance(origin, &candidates[i])
///             .total_cmp(&space.distance(origin, &candidates[j]))
///     })
/// }
///
/// let space = Euclidean2;
/// let pts = [[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]];
/// assert_eq!(farthest_from(&space, &[0.0, 0.0], &pts), Some(1));
/// ```
pub trait MetricSpace: Clone + Send + Sync + 'static {
    /// The point type of this space.
    type Point: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static;

    /// Distance between two points. Must be non-negative, symmetric and
    /// satisfy the triangle inequality.
    fn distance(&self, a: &Self::Point, b: &Self::Point) -> f64;

    /// Squared distance, the quantity minimized by the medoid projection
    /// (paper Sec. III-C) and the split objective (Sec. III-F).
    ///
    /// Override when a cheaper computation than `distance(a, b)^2` exists
    /// (e.g. Euclidean spaces can skip the square root).
    fn distance_sq(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        let d = self.distance(a, b);
        d * d
    }

    /// Optional spatial-bucketing support: a uniform cell decomposition
    /// with roughly `target_cells` cells, or `None` if this space has no
    /// usable coordinates (set spaces) or no finite extent (unbounded
    /// Euclidean space).
    ///
    /// Spaces that return `Some` here unlock grid-accelerated
    /// nearest-neighbor candidate indexes (the `GridIndex` of the
    /// topology crate) in place of exhaustive `O(n)` scans. The default
    /// is `None`: implementing this hook is purely an optimization and
    /// never changes protocol behavior.
    fn grid_spec(&self, target_cells: usize) -> Option<GridSpec> {
        let _ = target_cells;
        None
    }

    /// The cell of `p` under `spec`. Must return `Some((cx, cy))` with
    /// `cx < spec.nx` and `cy < spec.ny` whenever [`MetricSpace::grid_spec`]
    /// returned `spec`; the default (for spaces without grid support)
    /// returns `None`.
    fn grid_cell(&self, p: &Self::Point, spec: &GridSpec) -> Option<(usize, usize)> {
        let _ = (p, spec);
        None
    }
}

/// A uniform cell decomposition of a (1-D or 2-D) coordinate space, as
/// produced by [`MetricSpace::grid_spec`].
///
/// One-dimensional spaces use `ny == 1` with `wrap_y == false`. Cell
/// extents are in the space's own distance units, which is what lets
/// index queries lower-bound the distance to any cell at a given ring
/// radius: a point whose cell is `d ≥ 1` cells away along an axis is at
/// least `(d - 1) · cell_extent` away in space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridSpec {
    /// Number of cells along the x axis (`≥ 1`).
    pub nx: usize,
    /// Number of cells along the y axis (`1` for 1-D spaces).
    pub ny: usize,
    /// Cell extent along the x axis.
    pub cell_w: f64,
    /// Cell extent along the y axis (ignored when `ny == 1`).
    pub cell_h: f64,
    /// Whether the x axis wraps around (modular spaces).
    pub wrap_x: bool,
    /// Whether the y axis wraps around.
    pub wrap_y: bool,
}

impl GridSpec {
    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the decomposition is degenerate (no cells).
    pub fn is_empty(&self) -> bool {
        self.nx == 0 || self.ny == 0
    }

    /// The smallest per-axis cell extent, counting only axes that are
    /// actually subdivided — the unit of the ring-expansion lower bound.
    /// `0.0` for a single-cell grid (queries then scan everything, which
    /// is still correct).
    pub fn min_cell_extent(&self) -> f64 {
        match (self.nx > 1, self.ny > 1) {
            (true, true) => self.cell_w.min(self.cell_h),
            (true, false) => self.cell_w,
            (false, true) => self.cell_h,
            (false, false) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial discrete metric space used to exercise the default method.
    #[derive(Clone)]
    struct Discrete;

    impl MetricSpace for Discrete {
        type Point = u32;
        fn distance(&self, a: &u32, b: &u32) -> f64 {
            if a == b {
                0.0
            } else {
                1.0
            }
        }
    }

    #[test]
    fn default_distance_sq_squares_distance() {
        let s = Discrete;
        assert_eq!(s.distance_sq(&1, &1), 0.0);
        assert_eq!(s.distance_sq(&1, &2), 1.0);
    }

    #[test]
    fn trait_is_object_usable_via_generics() {
        fn total<S: MetricSpace>(s: &S, pts: &[S::Point]) -> f64 {
            let mut acc = 0.0;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    acc += s.distance(&pts[i], &pts[j]);
                }
            }
            acc
        }
        assert_eq!(total(&Discrete, &[1, 2, 3]), 3.0);
    }
}
