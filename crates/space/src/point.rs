//! The [`MetricSpace`] abstraction.
//!
//! Polystyrene's system model (paper Sec. III-A) places a single constraint
//! on the data space: a distance must be computable between any two data
//! points. Everything in this workspace — T-Man ranking, medoid projection,
//! diameter splits, homogeneity metrics — is generic over this trait, which
//! is what lets the same protocol organize a torus of 2-D coordinates or a
//! collection of user profiles (item sets).

/// A metric space over a point type `Self::Point`.
///
/// The space object carries the parameters of the space (e.g. the extents of
/// a torus), so points themselves stay plain data (`[f64; 2]`, `f64`,
/// bit sets, …) and can be exchanged between nodes cheaply.
///
/// Implementations must satisfy the metric axioms for the protocol's
/// convergence arguments to hold:
///
/// * `d(a, a) == 0`,
/// * symmetry: `d(a, b) == d(b, a)`,
/// * triangle inequality: `d(a, c) <= d(a, b) + d(b, c)`.
///
/// These are checked by property-based tests for every implementation in
/// this crate.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// fn farthest_from<S: MetricSpace>(space: &S, origin: &S::Point, candidates: &[S::Point])
///     -> Option<usize>
/// {
///     (0..candidates.len()).max_by(|&i, &j| {
///         space
///             .distance(origin, &candidates[i])
///             .total_cmp(&space.distance(origin, &candidates[j]))
///     })
/// }
///
/// let space = Euclidean2;
/// let pts = [[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]];
/// assert_eq!(farthest_from(&space, &[0.0, 0.0], &pts), Some(1));
/// ```
pub trait MetricSpace: Clone + Send + Sync + 'static {
    /// The point type of this space.
    type Point: Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static;

    /// Distance between two points. Must be non-negative, symmetric and
    /// satisfy the triangle inequality.
    fn distance(&self, a: &Self::Point, b: &Self::Point) -> f64;

    /// Squared distance, the quantity minimized by the medoid projection
    /// (paper Sec. III-C) and the split objective (Sec. III-F).
    ///
    /// Override when a cheaper computation than `distance(a, b)^2` exists
    /// (e.g. Euclidean spaces can skip the square root).
    fn distance_sq(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        let d = self.distance(a, b);
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial discrete metric space used to exercise the default method.
    #[derive(Clone)]
    struct Discrete;

    impl MetricSpace for Discrete {
        type Point = u32;
        fn distance(&self, a: &u32, b: &u32) -> f64 {
            if a == b {
                0.0
            } else {
                1.0
            }
        }
    }

    #[test]
    fn default_distance_sq_squares_distance() {
        let s = Discrete;
        assert_eq!(s.distance_sq(&1, &1), 0.0);
        assert_eq!(s.distance_sq(&1, &2), 1.0);
    }

    #[test]
    fn trait_is_object_usable_via_generics() {
        fn total<S: MetricSpace>(s: &S, pts: &[S::Point]) -> f64 {
            let mut acc = 0.0;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    acc += s.distance(&pts[i], &pts[j]);
                }
            }
            acc
        }
        assert_eq!(total(&Discrete, &[1, 2, 3]), 3.0);
    }
}
