//! Metric spaces and geometry for the Polystyrene reproduction.
//!
//! Polystyrene (Bouget, Kermarrec, Kervadec, Taïani — ICDCS 2014) only
//! requires its data space to be a *metric space*: "The only constraint on
//! this data space is that a distance can be computed between any two data
//! points" (Sec. III-A). This crate provides that abstraction plus every
//! geometric primitive the protocol stack needs:
//!
//! * the [`MetricSpace`] trait ([`point`]), with implementations for
//!   Euclidean `R^d` ([`euclidean`]), the flat 2-D torus used throughout the
//!   paper's evaluation ([`torus`]), a 1-D modular ring ([`ring`]), and a
//!   discrete set space with Jaccard distance ([`setspace`]) standing in for
//!   the "list of items" profile spaces the paper mentions;
//! * **medoid** computation ([`medoid`]) — the projection operator of
//!   Polystyrene's Step 1 (Sec. III-C), chosen over the centroid because
//!   division is ill-defined in modular spaces;
//! * **diameter** computation ([`diameter`]) — the PD heuristic of
//!   `SPLIT_ADVANCED` (Algorithm 5), with exact, sampled and two-sweep
//!   variants (the paper suggests sampling beyond ~30 points);
//! * target **shape generators** ([`shapes`]) — the 80×40 torus grid of
//!   Sec. IV-A and friends;
//! * summary **statistics** ([`stats`]) — means and 95 % confidence
//!   intervals used for every table in the evaluation.
//!
//! # Example
//!
//! ```
//! use polystyrene_space::prelude::*;
//!
//! // The paper's evaluation space: an 80x40 logical torus with step 1.
//! let space = Torus2::new(80.0, 40.0);
//! let a = [1.0, 1.0];
//! let b = [79.0, 39.0];
//! // Wrap-around: the two corners are only sqrt(8) apart on the torus.
//! assert!((space.distance(&a, &b) - 8.0f64.sqrt()).abs() < 1e-12);
//!
//! let grid = shapes::torus_grid(80, 40, 1.0);
//! assert_eq!(grid.len(), 3200);
//! let m = medoid(&space, &grid[..10]).unwrap();
//! assert!(grid[..10].contains(m));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diameter;
pub mod euclidean;
pub mod medoid;
pub mod point;
pub mod ring;
pub mod setspace;
pub mod shapes;
pub mod stats;
pub mod torus;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::diameter::{diameter_exact, diameter_of, diameter_sampled, diameter_two_sweep};
    pub use crate::euclidean::{Euclidean, Euclidean2, Euclidean3};
    pub use crate::medoid::{medoid, medoid_index, sum_sq_to};
    pub use crate::point::{GridSpec, MetricSpace};
    pub use crate::ring::Ring;
    pub use crate::setspace::{ItemSet, JaccardSpace};
    pub use crate::shapes;
    pub use crate::stats::{ci95, mean, ConfidenceInterval, SeriesAccumulator};
    pub use crate::torus::Torus2;
}

pub use point::{GridSpec, MetricSpace};
