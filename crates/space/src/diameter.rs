//! Diameter computation — the PD heuristic of `SPLIT_ADVANCED`.
//!
//! Algorithm 5 of the paper partitions a merged guest set "along one of its
//! diameters, i.e. a pair of points (u, v) so that d(u, v) = max d(x, y)".
//! The paper notes that beyond ~30 points one can "approximate a diameter by
//! taking a sample of pairs" — both the exact and the sampled variants live
//! here, plus the classic two-sweep heuristic as a cheaper alternative.

use crate::point::MetricSpace;
use rand::Rng;

/// A diameter estimate: the indices of the two endpoints and their distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Diameter {
    /// Index of the first endpoint.
    pub a: usize,
    /// Index of the second endpoint.
    pub b: usize,
    /// Distance between the endpoints.
    pub length: f64,
}

/// Exact diameter by exhaustive pair enumeration, `O(n^2)` distances.
///
/// Returns `None` for sets of fewer than two points.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// let pts = [[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]];
/// let d = diameter_exact(&Euclidean2, &pts).unwrap();
/// assert_eq!((d.a, d.b, d.length), (0, 2, 5.0));
/// ```
pub fn diameter_exact<S: MetricSpace>(space: &S, points: &[S::Point]) -> Option<Diameter> {
    diameter_exact_by(space, points, |p| p)
}

/// [`diameter_exact`] over any item type through a position accessor —
/// same enumeration order and tie-breaking, no temporary position `Vec`.
pub fn diameter_exact_by<S: MetricSpace, T>(
    space: &S,
    items: &[T],
    pos: impl Fn(&T) -> &S::Point,
) -> Option<Diameter> {
    if items.len() < 2 {
        return None;
    }
    let mut best = Diameter {
        a: 0,
        b: 1,
        length: -1.0,
    };
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let d = space.distance(pos(&items[i]), pos(&items[j]));
            if d > best.length {
                best = Diameter {
                    a: i,
                    b: j,
                    length: d,
                };
            }
        }
    }
    Some(best)
}

/// Approximate diameter from `pairs` random pairs.
///
/// Used by `SPLIT_ADVANCED` when the merged guest set is large, as the
/// paper suggests (Sec. III-F). Returns `None` for sets of fewer than two
/// points. The result is a lower bound on the true diameter.
pub fn diameter_sampled<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    points: &[S::Point],
    pairs: usize,
    rng: &mut R,
) -> Option<Diameter> {
    diameter_sampled_by(space, points, |p| p, pairs, rng)
}

/// [`diameter_sampled`] through a position accessor, with the identical
/// pair-draw sequence for a given `rng` state.
pub fn diameter_sampled_by<S: MetricSpace, T, R: Rng + ?Sized>(
    space: &S,
    items: &[T],
    pos: impl Fn(&T) -> &S::Point,
    pairs: usize,
    rng: &mut R,
) -> Option<Diameter> {
    let n = items.len();
    if n < 2 {
        return None;
    }
    let mut best = Diameter {
        a: 0,
        b: 1,
        length: space.distance(pos(&items[0]), pos(&items[1])),
    };
    for _ in 0..pairs {
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let d = space.distance(pos(&items[i]), pos(&items[j]));
        if d > best.length {
            best = Diameter {
                a: i,
                b: j,
                length: d,
            };
        }
    }
    Some(best)
}

/// Two-sweep diameter heuristic: start from a random point, walk to the
/// farthest point `a`, then to the point `b` farthest from `a`.
///
/// Costs `2n` distance evaluations. Exact on trees and very good on
/// convex-ish clouds; always a lower bound. Returns `None` for fewer than
/// two points.
pub fn diameter_two_sweep<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    points: &[S::Point],
    rng: &mut R,
) -> Option<Diameter> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let start = rng.random_range(0..n);
    let a = farthest_from(space, points, start);
    let b = farthest_from(space, points, a);
    Some(Diameter {
        a,
        b,
        length: space.distance(&points[a], &points[b]),
    })
}

fn farthest_from<S: MetricSpace>(space: &S, points: &[S::Point], from: usize) -> usize {
    let mut best = if from == 0 && points.len() > 1 { 1 } else { 0 };
    let mut best_d = -1.0;
    for (i, p) in points.iter().enumerate() {
        if i == from {
            continue;
        }
        let d = space.distance(&points[from], p);
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Adaptive diameter: exact up to `exact_threshold` points, sampled above.
///
/// This is the policy `SPLIT_ADVANCED` uses in this reproduction, with the
/// paper's suggested threshold of ~30 points as the default in the core
/// crate. The number of sampled pairs is `4n`, keeping the cost linear.
pub fn diameter_of<S: MetricSpace, R: Rng + ?Sized>(
    space: &S,
    points: &[S::Point],
    exact_threshold: usize,
    rng: &mut R,
) -> Option<Diameter> {
    diameter_of_by(space, points, |p| p, exact_threshold, rng)
}

/// [`diameter_of`] through a position accessor — the adaptive policy on
/// wrapped points, without a temporary position `Vec`.
pub fn diameter_of_by<S: MetricSpace, T, R: Rng + ?Sized>(
    space: &S,
    items: &[T],
    pos: impl Fn(&T) -> &S::Point,
    exact_threshold: usize,
    rng: &mut R,
) -> Option<Diameter> {
    if items.len() <= exact_threshold {
        diameter_exact_by(space, items, pos)
    } else {
        diameter_sampled_by(space, items, pos, items.len() * 4, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::Euclidean2;
    use crate::torus::Torus2;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_tiny_sets() {
        assert_eq!(diameter_exact(&Euclidean2, &[]), None);
        assert_eq!(diameter_exact(&Euclidean2, &[[0.0, 0.0]]), None);
        let d = diameter_exact(&Euclidean2, &[[0.0, 0.0], [3.0, 4.0]]).unwrap();
        assert_eq!(d.length, 5.0);
    }

    #[test]
    fn exact_finds_the_extremes() {
        let pts = [[0.0, 0.0], [1.0, 1.0], [-4.0, 0.0], [10.0, 0.0]];
        let d = diameter_exact(&Euclidean2, &pts).unwrap();
        assert_eq!((d.a, d.b), (2, 3));
        assert_eq!(d.length, 14.0);
    }

    #[test]
    fn exact_respects_torus_wrap() {
        let t = Torus2::new(10.0, 10.0);
        // 0 and 9 are distance 1 apart on the ring; 0 and 5 are 5 apart.
        let pts = [[0.0, 0.0], [9.0, 0.0], [5.0, 0.0]];
        let d = diameter_exact(&t, &pts).unwrap();
        assert_eq!((d.a, d.b, d.length), (0, 2, 5.0));
    }

    #[test]
    fn sampled_none_below_two_points() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            diameter_sampled(&Euclidean2, &[[1.0, 1.0]], 10, &mut rng),
            None
        );
    }

    #[test]
    fn two_sweep_exact_on_a_segment() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<[f64; 2]> = (0..50).map(|i| [i as f64, 0.0]).collect();
        let d = diameter_two_sweep(&Euclidean2, &pts, &mut rng).unwrap();
        assert_eq!(d.length, 49.0);
    }

    #[test]
    fn adaptive_switches_to_sampling() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<[f64; 2]> = (0..100).map(|i| [i as f64, 0.0]).collect();
        let exact = diameter_of(&Euclidean2, &pts[..10], 30, &mut rng).unwrap();
        assert_eq!(exact.length, 9.0);
        let approx = diameter_of(&Euclidean2, &pts, 30, &mut rng).unwrap();
        // 400 sampled pairs out of 4950 possible: overwhelmingly likely to
        // land close to the true diameter on a segment.
        assert!(approx.length >= 49.0);
    }

    fn pt2() -> impl Strategy<Value = [f64; 2]> {
        [-50.0..50.0, -50.0..50.0].prop_map(|[x, y]| [x, y])
    }

    proptest! {
        #[test]
        fn sampled_is_a_lower_bound(
            pts in proptest::collection::vec(pt2(), 2..40),
            seed in 0u64..500,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let exact = diameter_exact(&Euclidean2, &pts).unwrap();
            let approx = diameter_sampled(&Euclidean2, &pts, 20, &mut rng).unwrap();
            prop_assert!(approx.length <= exact.length + 1e-9);
        }

        #[test]
        fn two_sweep_is_a_lower_bound(
            pts in proptest::collection::vec(pt2(), 2..40),
            seed in 0u64..500,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let exact = diameter_exact(&Euclidean2, &pts).unwrap();
            let sweep = diameter_two_sweep(&Euclidean2, &pts, &mut rng).unwrap();
            prop_assert!(sweep.length <= exact.length + 1e-9);
            // ...and at least half of it, a classic two-sweep guarantee in
            // metric spaces by the triangle inequality.
            prop_assert!(sweep.length >= exact.length / 2.0 - 1e-9);
        }

        #[test]
        fn endpoints_are_distinct(
            pts in proptest::collection::vec(pt2(), 2..30),
            seed in 0u64..100,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            for d in [
                diameter_exact(&Euclidean2, &pts).unwrap(),
                diameter_sampled(&Euclidean2, &pts, 8, &mut rng).unwrap(),
                diameter_two_sweep(&Euclidean2, &pts, &mut rng).unwrap(),
            ] {
                prop_assert!(d.a != d.b);
                prop_assert!(d.a < pts.len() && d.b < pts.len());
            }
        }
    }
}
