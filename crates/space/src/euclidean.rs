//! Euclidean spaces `R^d` with the standard L2 distance.
//!
//! The paper assumes "nodes take their positions from a continuous space
//! with a small dimension … and use the standard Euclidean distance"
//! (Sec. II-B). [`Euclidean`] is generic over the dimension `D`; the
//! [`Euclidean2`](type@Euclidean2) and [`Euclidean3`](type@Euclidean3) aliases cover the common cases (a 2-D
//! plane for figures, "a 3D point" from the system model of Sec. III-A).

use crate::point::MetricSpace;

/// The Euclidean space `R^D`, points represented as `[f64; D]`.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// let plane = Euclidean::<2>;
/// assert_eq!(plane.distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Euclidean<const D: usize>;

/// The Euclidean plane `R^2`.
pub type Euclidean2 = Euclidean<2>;
/// Euclidean 3-space `R^3`.
pub type Euclidean3 = Euclidean<3>;

/// Value of the Euclidean plane, usable in expression position
/// (`Euclidean2.distance(..)`), mirroring the unit-struct idiom.
#[allow(non_upper_case_globals)]
pub const Euclidean2: Euclidean<2> = Euclidean::<2>;
/// Value of Euclidean 3-space, usable in expression position.
#[allow(non_upper_case_globals)]
pub const Euclidean3: Euclidean<3> = Euclidean::<3>;

impl<const D: usize> MetricSpace for Euclidean<D> {
    type Point = [f64; D];

    fn distance(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        self.distance_sq(a, b).sqrt()
    }

    fn distance_sq(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = a[i] - b[i];
            acc += d * d;
        }
        acc
    }
}

impl<const D: usize> Euclidean<D> {
    /// The arithmetic mean of a non-empty set of points.
    ///
    /// Well-defined in vector spaces only — this is exactly the operation
    /// that is *not* available on the torus (paper Sec. III-C, footnote 2),
    /// which is why Polystyrene's default projection is the medoid. It is
    /// still exposed here for the centroid-projection ablation.
    ///
    /// Returns `None` when `points` is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use polystyrene_space::prelude::*;
    ///
    /// let c = Euclidean2.centroid(&[[0.0, 0.0], [2.0, 4.0]]).unwrap();
    /// assert_eq!(c, [1.0, 2.0]);
    /// ```
    pub fn centroid(&self, points: &[[f64; D]]) -> Option<[f64; D]> {
        if points.is_empty() {
            return None;
        }
        let mut acc = [0.0; D];
        for p in points {
            for i in 0..D {
                acc[i] += p[i];
            }
        }
        let n = points.len() as f64;
        for v in acc.iter_mut() {
            *v /= n;
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pythagorean_triple() {
        assert_eq!(Euclidean2.distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn three_dimensional_distance() {
        let d = Euclidean3.distance(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert_eq!(d, 0.0);
        let d = Euclidean3.distance(&[0.0, 0.0, 0.0], &[1.0, 2.0, 2.0]);
        assert_eq!(d, 3.0);
    }

    #[test]
    fn distance_sq_avoids_sqrt_roundtrip() {
        let a = [0.3, -1.7];
        let b = [2.5, 0.9];
        let d = Euclidean2.distance(&a, &b);
        assert!((Euclidean2.distance_sq(&a, &b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert_eq!(Euclidean2.centroid(&[]), None);
    }

    #[test]
    fn centroid_of_singleton_is_the_point() {
        assert_eq!(Euclidean2.centroid(&[[5.0, -2.0]]), Some([5.0, -2.0]));
    }

    fn coord() -> impl Strategy<Value = f64> {
        -1e3..1e3
    }

    fn pt2() -> impl Strategy<Value = [f64; 2]> {
        [coord(), coord()]
    }

    proptest! {
        #[test]
        fn identity(a in pt2()) {
            prop_assert_eq!(Euclidean2.distance(&a, &a), 0.0);
        }

        #[test]
        fn symmetry(a in pt2(), b in pt2()) {
            let d1 = Euclidean2.distance(&a, &b);
            let d2 = Euclidean2.distance(&b, &a);
            prop_assert!((d1 - d2).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(a in pt2(), b in pt2(), c in pt2()) {
            let ac = Euclidean2.distance(&a, &c);
            let ab = Euclidean2.distance(&a, &b);
            let bc = Euclidean2.distance(&b, &c);
            prop_assert!(ac <= ab + bc + 1e-9);
        }

        #[test]
        fn non_negative(a in pt2(), b in pt2()) {
            prop_assert!(Euclidean2.distance(&a, &b) >= 0.0);
        }

        #[test]
        fn centroid_minimizes_sum_of_squares_locally(
            pts in proptest::collection::vec(pt2(), 1..20),
            probe in pt2(),
        ) {
            // The centroid is the global minimizer of sum of squared
            // distances in a vector space; any probe point must do at
            // least as badly.
            let c = Euclidean2.centroid(&pts).unwrap();
            let cost = |q: &[f64; 2]| -> f64 {
                pts.iter().map(|p| Euclidean2.distance_sq(p, q)).sum()
            };
            prop_assert!(cost(&c) <= cost(&probe) + 1e-6);
        }
    }
}
