//! Summary statistics for experiment reporting.
//!
//! Every quantitative claim in the paper is "averaged over 25 experiments,
//! and when mentioned, intervals of confidence are computed at a 95%
//! confidence level" (Sec. IV-B). This module provides exactly those
//! estimators: sample means, standard deviations, 95 % confidence
//! half-widths, and a per-round series accumulator used by the experiment
//! harness.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `NaN` for an empty slice is avoided by returning 0.0.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation (Bessel's correction).
/// Returns 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// A mean together with the half-width of its 95 % confidence interval,
/// i.e. the `±` column of the paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval around the mean.
    pub half_width: f64,
    /// Number of samples the estimate is built from.
    pub n: usize,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` falls inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

/// Two-sided 97.5 % Student-t quantile for `df` degrees of freedom.
///
/// Table-driven for small `df` (the regime of 25-run experiments), falling
/// back to the normal quantile 1.96 for large `df`.
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        return f64::INFINITY;
    }
    if df <= TABLE.len() {
        TABLE[df - 1]
    } else if df <= 60 {
        2.000
    } else {
        1.96
    }
}

/// 95 % confidence interval of the mean of `xs` (Student-t).
///
/// With fewer than two samples the half-width is reported as 0, matching
/// the paper's convention of printing `± 0.000` for deterministic outcomes.
///
/// # Example
///
/// ```
/// use polystyrene_space::stats::ci95;
///
/// let ci = ci95(&[5.0, 5.0, 5.0, 5.0]);
/// assert_eq!(ci.mean, 5.0);
/// assert_eq!(ci.half_width, 0.0);
/// ```
pub fn ci95(xs: &[f64]) -> ConfidenceInterval {
    let n = xs.len();
    if n < 2 {
        return ConfidenceInterval {
            mean: mean(xs),
            half_width: 0.0,
            n,
        };
    }
    let s = std_dev(xs);
    ConfidenceInterval {
        mean: mean(xs),
        half_width: t_975(n - 1) * s / (n as f64).sqrt(),
        n,
    }
}

/// Accumulates per-round series across repeated experiment runs and
/// produces per-round means and confidence intervals — the machinery behind
/// every time-series figure (Figs. 6 and 7).
///
/// Runs may have different lengths (e.g. a run that ends early); statistics
/// at round `r` are computed over the runs that reached round `r`.
///
/// # Example
///
/// ```
/// use polystyrene_space::stats::SeriesAccumulator;
///
/// let mut acc = SeriesAccumulator::new();
/// acc.push_run(vec![1.0, 2.0, 3.0]);
/// acc.push_run(vec![3.0, 4.0]);
/// let means = acc.means();
/// assert_eq!(means, vec![2.0, 3.0, 3.0]);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SeriesAccumulator {
    runs: Vec<Vec<f64>>,
}

impl SeriesAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the per-round series of one run.
    pub fn push_run(&mut self, series: Vec<f64>) {
        self.runs.push(series);
    }

    /// Number of runs accumulated so far.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Length of the longest run.
    pub fn rounds(&self) -> usize {
        self.runs.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Samples available at round `r` across runs.
    fn at_round(&self, r: usize) -> Vec<f64> {
        self.runs
            .iter()
            .filter_map(|run| run.get(r))
            .copied()
            .collect()
    }

    /// Per-round means.
    pub fn means(&self) -> Vec<f64> {
        (0..self.rounds())
            .map(|r| mean(&self.at_round(r)))
            .collect()
    }

    /// Per-round 95 % confidence intervals.
    pub fn cis(&self) -> Vec<ConfidenceInterval> {
        (0..self.rounds())
            .map(|r| ci95(&self.at_round(r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[4.0, 4.0, 4.0]), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        // Sample std-dev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ci_of_single_sample_has_zero_width() {
        let ci = ci95(&[42.0]);
        assert_eq!(ci.mean, 42.0);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.n, 1);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let few: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let many: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect();
        assert!(ci95(&many).half_width < ci95(&few).half_width);
    }

    #[test]
    fn ci_contains_and_bounds() {
        let ci = ci95(&[1.0, 2.0, 3.0]);
        assert!(ci.contains(ci.mean));
        assert!(ci.contains(ci.low()));
        assert!(ci.contains(ci.high()));
        assert!(!ci.contains(ci.high() + 1.0));
        assert!((ci.high() - ci.low() - 2.0 * ci.half_width).abs() < 1e-12);
    }

    #[test]
    fn ci_display_format() {
        let ci = ci95(&[5.0, 5.0]);
        assert_eq!(format!("{ci}"), "5.000 ± 0.000");
    }

    #[test]
    fn t_table_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..=100 {
            let t = t_975(df);
            assert!(t <= prev, "t quantile must decrease with df");
            prev = t;
        }
        assert_eq!(t_975(1000), 1.96);
    }

    #[test]
    fn series_accumulator_handles_ragged_runs() {
        let mut acc = SeriesAccumulator::new();
        acc.push_run(vec![1.0, 2.0, 3.0]);
        acc.push_run(vec![3.0, 4.0]);
        assert_eq!(acc.run_count(), 2);
        assert_eq!(acc.rounds(), 3);
        assert_eq!(acc.means(), vec![2.0, 3.0, 3.0]);
        let cis = acc.cis();
        assert_eq!(cis.len(), 3);
        assert_eq!(cis[2].n, 1);
    }

    #[test]
    fn empty_accumulator() {
        let acc = SeriesAccumulator::new();
        assert_eq!(acc.rounds(), 0);
        assert!(acc.means().is_empty());
        assert!(acc.cis().is_empty());
    }

    proptest! {
        #[test]
        fn ci_always_contains_the_mean(xs in proptest::collection::vec(-1e3..1e3f64, 1..40)) {
            let ci = ci95(&xs);
            prop_assert!(ci.contains(ci.mean));
            prop_assert!(ci.half_width >= 0.0);
        }

        #[test]
        fn mean_is_within_min_max(xs in proptest::collection::vec(-1e3..1e3f64, 1..40)) {
            let m = mean(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn accumulator_means_match_manual_average(
            a in proptest::collection::vec(-10.0..10.0f64, 1..10),
            b in proptest::collection::vec(-10.0..10.0f64, 1..10),
        ) {
            let mut acc = SeriesAccumulator::new();
            acc.push_run(a.clone());
            acc.push_run(b.clone());
            let means = acc.means();
            for (r, m) in means.iter().enumerate() {
                let mut samples = Vec::new();
                if let Some(x) = a.get(r) { samples.push(*x); }
                if let Some(x) = b.get(r) { samples.push(*x); }
                prop_assert!((m - mean(&samples)).abs() < 1e-12);
            }
        }
    }
}
