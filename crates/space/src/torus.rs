//! The flat 2-D torus — the modular space used throughout the paper's
//! evaluation (an 80×40 "logical torus" in Sec. IV-A, up to 320×160 in
//! Sec. IV-C).
//!
//! Distances wrap around both axes, which is precisely what makes the
//! centroid ill-defined ("the equation 4 ≡ 2 × x (mod 16) accepts two
//! solutions", paper footnote 2) and motivates the medoid projection.

use crate::point::MetricSpace;

/// A flat torus of extents `width × height`: the quotient space
/// `R^2 / (width·Z × height·Z)` with the induced Euclidean metric.
///
/// Points are plain `[f64; 2]` coordinates. Coordinates outside the
/// fundamental domain `[0, width) × [0, height)` are accepted and handled
/// via [`Torus2::normalize`]; distance computations wrap correctly either
/// way.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
///
/// let t = Torus2::new(80.0, 40.0);
/// // Wrap-around on the x axis: 0 and 79 are 1 apart, not 79.
/// assert_eq!(t.distance(&[0.0, 0.0], &[79.0, 0.0]), 1.0);
/// // The antipode realizes the maximum possible distance.
/// assert!((t.distance(&[0.0, 0.0], &[40.0, 20.0]) - t.max_distance()).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Torus2 {
    width: f64,
    height: f64,
}

impl Torus2 {
    /// Creates a torus with the given extents.
    ///
    /// # Panics
    ///
    /// Panics if either extent is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "torus width must be positive and finite, got {width}"
        );
        assert!(
            height > 0.0 && height.is_finite(),
            "torus height must be positive and finite, got {height}"
        );
        Self { width, height }
    }

    /// The extent of the torus along the x axis.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The extent of the torus along the y axis.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The area of the torus, used by the reference homogeneity
    /// `H = 1/2 · sqrt(A / |N|)` of paper Sec. IV-A.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Maps a point into the fundamental domain `[0, width) × [0, height)`.
    ///
    /// # Example
    ///
    /// ```
    /// use polystyrene_space::prelude::*;
    ///
    /// let t = Torus2::new(10.0, 10.0);
    /// assert_eq!(t.normalize([12.5, -1.0]), [2.5, 9.0]);
    /// ```
    pub fn normalize(&self, p: [f64; 2]) -> [f64; 2] {
        [p[0].rem_euclid(self.width), p[1].rem_euclid(self.height)]
    }

    /// Shortest signed displacement along one axis of circumference `len`.
    fn axis_delta(a: f64, b: f64, len: f64) -> f64 {
        // `rem_euclid` is an fmod library call, and this function runs
        // inside every distance evaluation of every ranking pass. For
        // in-range coordinates (|a − b| < len, the overwhelmingly common
        // case) fmod's quotient is zero and the operation reduces to the
        // branch below — bit-identical, since fmod is exact.
        let diff = a - b;
        let d = if -len < diff && diff < len {
            if diff < 0.0 {
                diff + len
            } else {
                diff
            }
        } else {
            diff.rem_euclid(len)
        };
        if d > len / 2.0 {
            len - d
        } else {
            d
        }
    }

    /// The maximum possible distance between two points of this torus
    /// (half the diagonal of the fundamental domain).
    pub fn max_distance(&self) -> f64 {
        let dx = self.width / 2.0;
        let dy = self.height / 2.0;
        (dx * dx + dy * dy).sqrt()
    }
}

impl MetricSpace for Torus2 {
    type Point = [f64; 2];

    fn distance(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        self.distance_sq(a, b).sqrt()
    }

    fn distance_sq(&self, a: &Self::Point, b: &Self::Point) -> f64 {
        let dx = Self::axis_delta(a[0], b[0], self.width);
        let dy = Self::axis_delta(a[1], b[1], self.height);
        dx * dx + dy * dy
    }

    fn grid_spec(&self, target_cells: usize) -> Option<crate::point::GridSpec> {
        // Split the target cell budget across the axes proportionally to
        // the extents, so cells come out roughly square.
        let target = target_cells.max(1) as f64;
        let nx = ((target * self.width / self.height).sqrt().round() as usize).max(1);
        let ny = ((target * self.height / self.width).sqrt().round() as usize).max(1);
        Some(crate::point::GridSpec {
            nx,
            ny,
            cell_w: self.width / nx as f64,
            cell_h: self.height / ny as f64,
            wrap_x: true,
            wrap_y: true,
        })
    }

    fn grid_cell(&self, p: &Self::Point, spec: &crate::point::GridSpec) -> Option<(usize, usize)> {
        let q = self.normalize(*p);
        let cx = ((q[0] / spec.cell_w) as usize).min(spec.nx - 1);
        let cy = ((q[1] / spec.cell_h) as usize).min(spec.ny - 1);
        Some((cx, cy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wraps_on_both_axes() {
        let t = Torus2::new(80.0, 40.0);
        assert_eq!(t.distance(&[0.0, 0.0], &[79.0, 0.0]), 1.0);
        assert_eq!(t.distance(&[0.0, 0.0], &[0.0, 39.0]), 1.0);
        let d = t.distance(&[1.0, 1.0], &[79.0, 39.0]);
        assert!((d - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn interior_distances_match_euclidean() {
        let t = Torus2::new(100.0, 100.0);
        assert_eq!(t.distance(&[10.0, 10.0], &[13.0, 14.0]), 5.0);
    }

    #[test]
    fn normalize_maps_into_fundamental_domain() {
        let t = Torus2::new(10.0, 5.0);
        assert_eq!(t.normalize([12.5, -1.0]), [2.5, 4.0]);
        assert_eq!(t.normalize([-0.0, 5.0]), [0.0, 0.0]);
    }

    #[test]
    fn max_distance_is_half_diagonal() {
        let t = Torus2::new(80.0, 40.0);
        assert!((t.max_distance() - (40.0f64 * 40.0 + 20.0 * 20.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn area() {
        assert_eq!(Torus2::new(80.0, 40.0).area(), 3200.0);
    }

    #[test]
    #[should_panic(expected = "torus width must be positive")]
    fn zero_width_panics() {
        let _ = Torus2::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "torus height must be positive")]
    fn negative_height_panics() {
        let _ = Torus2::new(1.0, -3.0);
    }

    fn tpt() -> impl Strategy<Value = [f64; 2]> {
        [0.0..80.0, 0.0..40.0].prop_map(|[x, y]| [x, y])
    }

    proptest! {
        #[test]
        fn identity(a in tpt()) {
            let t = Torus2::new(80.0, 40.0);
            prop_assert!(t.distance(&a, &a).abs() < 1e-12);
        }

        #[test]
        fn symmetry(a in tpt(), b in tpt()) {
            let t = Torus2::new(80.0, 40.0);
            prop_assert!((t.distance(&a, &b) - t.distance(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(a in tpt(), b in tpt(), c in tpt()) {
            let t = Torus2::new(80.0, 40.0);
            prop_assert!(t.distance(&a, &c) <= t.distance(&a, &b) + t.distance(&b, &c) + 1e-9);
        }

        #[test]
        fn bounded_by_max_distance(a in tpt(), b in tpt()) {
            let t = Torus2::new(80.0, 40.0);
            prop_assert!(t.distance(&a, &b) <= t.max_distance() + 1e-9);
        }

        #[test]
        fn torus_never_exceeds_euclidean(a in tpt(), b in tpt()) {
            // Wrapping can only shorten a path, never lengthen it.
            let t = Torus2::new(80.0, 40.0);
            let e = crate::euclidean::Euclidean2;
            prop_assert!(t.distance(&a, &b) <= e.distance(&a, &b) + 1e-9);
        }

        #[test]
        fn invariant_under_translation(a in tpt(), b in tpt(), sx in 0.0..80.0, sy in 0.0..40.0) {
            let t = Torus2::new(80.0, 40.0);
            let shift = |p: [f64; 2]| t.normalize([p[0] + sx, p[1] + sy]);
            let d0 = t.distance(&a, &b);
            let d1 = t.distance(&shift(a), &shift(b));
            prop_assert!((d0 - d1).abs() < 1e-9);
        }

        #[test]
        fn normalize_preserves_distance(a in tpt(), b in tpt(), ka in -3i32..3, kb in -3i32..3) {
            let t = Torus2::new(80.0, 40.0);
            let a2 = [a[0] + 80.0 * ka as f64, a[1] + 40.0 * ka as f64];
            let b2 = [b[0] + 80.0 * kb as f64, b[1] + 40.0 * kb as f64];
            prop_assert!((t.distance(&a2, &b2) - t.distance(&a, &b)).abs() < 1e-6);
        }
    }
}
