//! T-Man — the topology-construction protocol of the paper's evaluation.
//!
//! T-Man (Jelasity et al., Comp. Netw. 2009 — the paper's reference \[1\])
//! greedily self-organizes nodes towards a target topology: each round a
//! node picks a gossip partner among its ψ closest neighbors, the two
//! exchange their `m` most relevant descriptors (ranked by distance to the
//! *recipient's* position), and each keeps the closest entries up to a view
//! cap. The paper runs it with `m = 20`, `ψ = 5` and views "capped to 100
//! peers (rather than being unbounded as in \[1\])" (Sec. IV-A).

use crate::rank::{
    choose_ranked, dedup_freshest_in_place, drop_self, for_k_closest, insert_one_capped, k_closest,
    k_closest_ids_into, k_closest_into, retain_k_closest,
};
use crate::traits::TopologyConstruction;
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_space::MetricSpace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// T-Man protocol parameters.
///
/// The defaults are the paper's evaluation settings (Sec. IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TManConfig {
    /// Maximum number of descriptors kept in the view (paper: 100).
    pub view_cap: usize,
    /// Number of descriptors per gossip message (paper: m = 20).
    pub m: usize,
    /// Partner selected uniformly among the ψ closest neighbors
    /// (paper: ψ = 5).
    pub psi: usize,
}

impl Default for TManConfig {
    fn default() -> Self {
        Self {
            view_cap: 100,
            m: 20,
            psi: 5,
        }
    }
}

impl TManConfig {
    /// Validates parameter sanity; called by [`TMan::new`].
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn validate(&self) {
        assert!(self.view_cap > 0, "view_cap must be positive");
        assert!(self.m > 0, "m (profiles per message) must be positive");
        assert!(self.psi > 0, "psi (peer-selection width) must be positive");
    }
}

/// T-Man protocol state of one node.
///
/// The node's own position is *not* stored here: Polystyrene moves nodes
/// around, so the position is owned by the layer above and passed into
/// every operation (paper Fig. 3: "Node position" flows downward).
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
/// use polystyrene_membership::{Descriptor, NodeId};
/// use polystyrene_topology::{TMan, TManConfig, TopologyConstruction};
///
/// let mut tman = TMan::new(Euclidean2, TManConfig { view_cap: 4, m: 2, psi: 2 });
/// tman.integrate(NodeId::new(0), &[0.0, 0.0], &[
///     Descriptor::new(NodeId::new(1), [1.0, 0.0]),
///     Descriptor::new(NodeId::new(2), [2.0, 0.0]),
///     Descriptor::new(NodeId::new(3), [3.0, 0.0]),
/// ]);
/// assert_eq!(tman.view_len(), 3);
/// assert_eq!(tman.closest(&[0.0, 0.0], 1)[0].id, NodeId::new(1));
/// ```
#[derive(Clone, Debug)]
pub struct TMan<S: MetricSpace> {
    space: S,
    config: TManConfig,
    view: Vec<Descriptor<S::Point>>,
}

impl<S: MetricSpace> TMan<S> {
    /// Creates an empty T-Man instance.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`TManConfig::validate`].
    pub fn new(space: S, config: TManConfig) -> Self {
        config.validate();
        Self {
            space,
            config,
            view: Vec::new(),
        }
    }

    /// The protocol parameters.
    pub fn config(&self) -> &TManConfig {
        &self.config
    }

    /// The metric space this instance ranks within.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// Refreshes the positions of view entries from `lookup` (current
    /// position of a node, or `None` if unknown/dead), returning how many
    /// entries actually changed position.
    ///
    /// Polystyrene nodes *move* every round, so without this step the view
    /// ranks neighbors by stale coordinates. The paper accounts for it
    /// explicitly: "Because nodes move, T-Man must update their positions
    /// in its view in each round, causing most of the traffic"
    /// (Sec. IV-B) — the driver charges one descriptor per changed entry.
    /// `lookup` borrows the current position out of the driver's position
    /// slab (or returns `None` if unknown/dead), so a full refresh pass
    /// clones a position only for the entries that actually moved.
    pub fn refresh_positions<'a>(
        &mut self,
        mut lookup: impl FnMut(NodeId) -> Option<&'a S::Point>,
    ) -> usize
    where
        S::Point: 'a,
    {
        let mut changed = 0;
        for entry in &mut self.view {
            if let Some(current) = lookup(entry.id) {
                if *current != entry.pos {
                    entry.pos = current.clone();
                    changed += 1;
                }
                entry.age = 0;
            }
        }
        changed
    }

    /// Builds the gossip buffer for a partner located at `target_pos`: the
    /// sender's own fresh descriptor plus the view entries most relevant to
    /// the recipient, `m` descriptors in total.
    pub fn prepare_message(
        &self,
        self_descriptor: Descriptor<S::Point>,
        target_pos: &S::Point,
    ) -> Vec<Descriptor<S::Point>> {
        let mut buffer = Vec::new();
        self.prepare_message_into(self_descriptor, target_pos, &mut buffer);
        buffer
    }

    /// [`TMan::prepare_message`] appending into a caller-owned (typically
    /// pooled) buffer.
    pub fn prepare_message_into(
        &self,
        self_descriptor: Descriptor<S::Point>,
        target_pos: &S::Point,
        buffer: &mut Vec<Descriptor<S::Point>>,
    ) {
        k_closest_into(
            &self.space,
            target_pos,
            &self.view,
            self.config.m.saturating_sub(1),
            buffer,
        );
        buffer.push(self_descriptor);
    }

    /// Appends the ids of the `k` view entries closest to `pos` into
    /// `out` — the clone-free twin of [`TopologyConstruction::closest`] for
    /// callers that only need identities.
    pub fn closest_ids_into(&self, pos: &S::Point, k: usize, out: &mut Vec<NodeId>) {
        k_closest_ids_into(&self.space, pos, &self.view, k, out);
    }

    /// Visits the `k` view entries closest to `pos` in distance order
    /// without cloning them. `visit` must not re-enter a ranking helper
    /// (they share one per-thread scratch).
    pub fn for_closest(&self, pos: &S::Point, k: usize, visit: impl FnMut(&Descriptor<S::Point>)) {
        for_k_closest(&self.space, pos, &self.view, k, visit);
    }
}

impl<S: MetricSpace> TopologyConstruction<S> for TMan<S> {
    fn begin_round(&mut self) {
        for d in &mut self.view {
            d.age = d.age.saturating_add(1);
        }
    }

    fn closest(&self, pos: &S::Point, k: usize) -> Vec<Descriptor<S::Point>> {
        k_closest(&self.space, pos, &self.view, k)
    }

    fn select_partner<R: Rng + ?Sized>(&self, pos: &S::Point, rng: &mut R) -> Option<NodeId> {
        // The ψ-closest candidates are ranked in the thread-local key
        // scratch and the pick drawn in place: same candidates, same
        // draw, no index vector allocated per round.
        let pick = choose_ranked(&self.space, pos, &self.view, self.config.psi, |n| {
            rng.random_range(0..n)
        })?;
        Some(self.view[pick].id)
    }

    fn integrate(&mut self, self_id: NodeId, pos: &S::Point, incoming: &[Descriptor<S::Point>]) {
        // The once-per-round random-contact fold is a single descriptor;
        // the view is always deduplicated and within its cap (every write
        // below maintains that), so it can skip the merge pipeline.
        if let [d] = incoming {
            if d.id != self_id {
                insert_one_capped(&self.space, pos, &mut self.view, self.config.view_cap, d);
            }
            return;
        }
        // The merged buffer is unordered until `retain_k_closest` ranks
        // it; nothing between the extend and the rank may assume any
        // ordering of `merged`.
        let mut merged = std::mem::take(&mut self.view);
        merged.extend(incoming.iter().cloned());
        drop_self(&mut merged, self_id);
        dedup_freshest_in_place(&mut merged);
        retain_k_closest(&self.space, pos, &mut merged, self.config.view_cap);
        self.view = merged;
    }

    fn purge_failed(&mut self, is_failed: &dyn Fn(NodeId) -> bool) -> usize {
        let before = self.view.len();
        self.view.retain(|d| !is_failed(d.id));
        before - self.view.len()
    }

    fn view_len(&self) -> usize {
        self.view.len()
    }

    fn view_entries(&self) -> &[Descriptor<S::Point>] {
        &self.view
    }
}

/// Communication volume of one pairwise exchange, in descriptors.
///
/// The simulator converts descriptors to the paper's cost units
/// ("sending a node descriptor (its ID, plus its coordinates) counts as 3
/// units", Sec. IV-A).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Descriptors in the initiator's request.
    pub request_descriptors: usize,
    /// Descriptors in the responder's reply.
    pub reply_descriptors: usize,
}

impl ExchangeStats {
    /// Total descriptors moved in both directions.
    pub fn total(&self) -> usize {
        self.request_descriptors + self.reply_descriptors
    }
}

/// One full T-Man exchange between initiator `a` and responder `b`:
/// both send their `m` best descriptors for the other's position and both
/// merge (the "pair-wise pull-push exchange" of the T-Man round).
///
/// `a_descriptor` / `b_descriptor` must carry each node's *current*
/// position — in a Polystyrene deployment nodes move every round, and this
/// re-minting of fresh descriptors is exactly why "T-Man must update their
/// positions in its view in each round, causing most of the traffic"
/// (paper Sec. IV-B).
pub fn tman_exchange<S: MetricSpace>(
    a: &mut TMan<S>,
    a_descriptor: Descriptor<S::Point>,
    b: &mut TMan<S>,
    b_descriptor: Descriptor<S::Point>,
) -> ExchangeStats {
    let a_id = a_descriptor.id;
    let b_id = b_descriptor.id;
    let a_pos = a_descriptor.pos.clone();
    let b_pos = b_descriptor.pos.clone();

    let request = a.prepare_message(a_descriptor, &b_pos);
    let reply = b.prepare_message(b_descriptor, &a_pos);
    b.integrate(b_id, &b_pos, &request);
    a.integrate(a_id, &a_pos, &reply);
    ExchangeStats {
        request_descriptors: request.len(),
        reply_descriptors: reply.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(id: u64, x: f64, y: f64) -> Descriptor<[f64; 2]> {
        Descriptor::new(NodeId::new(id), [x, y])
    }

    fn small_config() -> TManConfig {
        TManConfig {
            view_cap: 6,
            m: 3,
            psi: 2,
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let c = TManConfig::default();
        assert_eq!((c.view_cap, c.m, c.psi), (100, 20, 5));
    }

    #[test]
    #[should_panic(expected = "m (profiles per message)")]
    fn zero_m_rejected() {
        let _ = TMan::new(
            Euclidean2,
            TManConfig {
                view_cap: 1,
                m: 0,
                psi: 1,
            },
        );
    }

    #[test]
    fn integrate_dedups_ranks_and_caps() {
        let mut t = TMan::new(Euclidean2, small_config());
        let incoming: Vec<_> = (1..=10).map(|i| d(i, i as f64, 0.0)).collect();
        t.integrate(NodeId::new(0), &[0.0, 0.0], &incoming);
        assert_eq!(t.view_len(), 6); // capped
        let ids: Vec<_> = t.view_entries().iter().map(|e| e.id.as_u64()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]); // closest kept, in order
    }

    #[test]
    fn integrate_drops_self_descriptor() {
        let mut t = TMan::new(Euclidean2, small_config());
        t.integrate(
            NodeId::new(7),
            &[0.0, 0.0],
            &[d(7, 1.0, 0.0), d(2, 2.0, 0.0)],
        );
        assert_eq!(t.view_len(), 1);
        assert_eq!(t.view_entries()[0].id, NodeId::new(2));
    }

    #[test]
    fn integrate_prefers_fresh_positions() {
        let mut t = TMan::new(Euclidean2, small_config());
        t.integrate(
            NodeId::new(0),
            &[0.0, 0.0],
            &[Descriptor::with_age(NodeId::new(1), [1.0, 0.0], 5)],
        );
        // A fresher descriptor of node 1 arrives with a new position.
        t.integrate(
            NodeId::new(0),
            &[0.0, 0.0],
            &[Descriptor::with_age(NodeId::new(1), [3.0, 0.0], 0)],
        );
        let view = t.view_entries();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].pos, [3.0, 0.0]);
    }

    #[test]
    fn select_partner_stays_within_psi_closest() {
        let mut t = TMan::new(Euclidean2, small_config());
        let incoming: Vec<_> = (1..=6).map(|i| d(i, i as f64, 0.0)).collect();
        t.integrate(NodeId::new(0), &[0.0, 0.0], &incoming);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = t.select_partner(&[0.0, 0.0], &mut rng).unwrap();
            assert!(p.as_u64() <= 2, "partner {p} outside psi=2 closest");
        }
    }

    #[test]
    fn select_partner_none_on_empty_view() {
        let t = TMan::new(Euclidean2, small_config());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.select_partner(&[0.0, 0.0], &mut rng), None);
    }

    #[test]
    fn prepare_message_targets_recipient_and_includes_self() {
        let mut t = TMan::new(
            Euclidean2,
            TManConfig {
                view_cap: 10,
                m: 3,
                psi: 2,
            },
        );
        t.integrate(
            NodeId::new(0),
            &[0.0, 0.0],
            &[d(1, 1.0, 0.0), d(2, 5.0, 0.0), d(3, 9.0, 0.0)],
        );
        // Recipient sits at x=9: the buffer must carry the entries nearest
        // to *it* (ids 3 and 2), not to the sender.
        let msg = t.prepare_message(d(0, 0.0, 0.0), &[9.0, 0.0]);
        assert_eq!(msg.len(), 3);
        let ids: Vec<_> = msg.iter().map(|e| e.id.as_u64()).collect();
        assert!(ids.contains(&3) && ids.contains(&2) && ids.contains(&0));
    }

    #[test]
    fn exchange_improves_both_views() {
        let mut a = TMan::new(Euclidean2, small_config());
        let mut b = TMan::new(Euclidean2, small_config());
        // a knows far nodes near b; b knows far nodes near a.
        a.integrate(
            NodeId::new(0),
            &[0.0, 0.0],
            &[d(10, 10.0, 0.0), d(11, 11.0, 0.0)],
        );
        b.integrate(
            NodeId::new(1),
            &[10.0, 0.0],
            &[d(20, 0.5, 0.0), d(21, 1.5, 0.0)],
        );
        let stats = tman_exchange(&mut a, d(0, 0.0, 0.0), &mut b, d(1, 10.0, 0.0));
        assert_eq!(
            stats.total(),
            stats.request_descriptors + stats.reply_descriptors
        );
        // a learned about 20/21 (close to a), b about 10/11 (close to b).
        assert!(a.view_entries().iter().any(|e| e.id == NodeId::new(20)));
        assert!(b.view_entries().iter().any(|e| e.id == NodeId::new(10)));
        // And each learned the partner itself.
        assert!(a.view_entries().iter().any(|e| e.id == NodeId::new(1)));
        assert!(b.view_entries().iter().any(|e| e.id == NodeId::new(0)));
    }

    #[test]
    fn purge_failed_removes_entries() {
        let mut t = TMan::new(Euclidean2, small_config());
        t.integrate(
            NodeId::new(0),
            &[0.0, 0.0],
            &[d(1, 1.0, 0.0), d(2, 2.0, 0.0), d(3, 3.0, 0.0)],
        );
        let removed = t.purge_failed(&|id| id.as_u64() % 2 == 1);
        assert_eq!(removed, 2);
        assert_eq!(t.view_len(), 1);
    }

    #[test]
    fn refresh_positions_updates_and_counts_changes() {
        let mut t = TMan::new(Euclidean2, small_config());
        t.integrate(
            NodeId::new(0),
            &[0.0, 0.0],
            &[d(1, 1.0, 0.0), d(2, 2.0, 0.0), d(3, 3.0, 0.0)],
        );
        t.begin_round(); // age everything to 1
                         // Node 1 moved, node 2 stayed, node 3 is unknown to the lookup.
        let moved = [5.0, 0.0];
        let stayed = [2.0, 0.0];
        let changed = t.refresh_positions(|id| match id.as_u64() {
            1 => Some(&moved),
            2 => Some(&stayed),
            _ => None,
        });
        assert_eq!(changed, 1);
        let view = t.view_entries();
        let e1 = view.iter().find(|e| e.id == NodeId::new(1)).unwrap();
        assert_eq!(e1.pos, [5.0, 0.0]);
        assert_eq!(e1.age, 0, "refreshed entries are fresh");
        let e2 = view.iter().find(|e| e.id == NodeId::new(2)).unwrap();
        assert_eq!(e2.age, 0, "confirmed entries are fresh too");
        let e3 = view.iter().find(|e| e.id == NodeId::new(3)).unwrap();
        assert_eq!(e3.age, 1, "unknown entries keep aging");
    }

    #[test]
    fn begin_round_ages_entries() {
        let mut t = TMan::new(Euclidean2, small_config());
        t.integrate(NodeId::new(0), &[0.0, 0.0], &[d(1, 1.0, 0.0)]);
        t.begin_round();
        assert_eq!(t.view_entries()[0].age, 1);
    }

    /// End-to-end convergence: a small ring of nodes running T-Man over a
    /// torus must link every node to its true grid neighbors.
    #[test]
    #[allow(clippy::needless_range_loop)] // indices drive split_at_mut
    fn converges_to_ring_neighborhoods() {
        let n = 24u64;
        let space = Ring::new(n as f64);
        let config = TManConfig {
            view_cap: 8,
            m: 4,
            psi: 3,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mut nodes: Vec<TMan<Ring>> = (0..n).map(|_| TMan::new(space, config)).collect();
        let pos = |i: u64| i as f64;
        // Random bootstrap: 3 random contacts each.
        for i in 0..n as usize {
            let contacts: Vec<_> = (0..3)
                .map(|_| {
                    let j = rng.random_range(0..n);
                    Descriptor::new(NodeId::new(j), pos(j))
                })
                .filter(|c| c.id.as_u64() != i as u64)
                .collect();
            nodes[i].integrate(NodeId::new(i as u64), &pos(i as u64), &contacts);
        }
        for _round in 0..30 {
            for i in 0..n as usize {
                let me = NodeId::new(i as u64);
                let my_pos = pos(i as u64);
                let partner = {
                    let node = &mut nodes[i];
                    node.begin_round();
                    node.select_partner(&my_pos, &mut rng)
                };
                let Some(partner) = partner else { continue };
                let j = partner.index();
                if i == j {
                    continue;
                }
                let (pa, pb) = if i < j {
                    let (l, r) = nodes.split_at_mut(j);
                    (&mut l[i], &mut r[0])
                } else {
                    let (l, r) = nodes.split_at_mut(i);
                    (&mut r[0], &mut l[j])
                };
                tman_exchange(
                    pa,
                    Descriptor::new(me, my_pos),
                    pb,
                    Descriptor::new(partner, pos(partner.as_u64())),
                );
            }
        }
        // Every node's 2 closest view entries must be its ring neighbors.
        for i in 0..n {
            let neigh = nodes[i as usize].closest(&pos(i), 2);
            let mut got: Vec<u64> = neigh.iter().map(|e| e.id.as_u64()).collect();
            got.sort();
            let mut expect = vec![(i + n - 1) % n, (i + 1) % n];
            expect.sort();
            assert_eq!(got, expect, "node {i} neighborhood wrong");
        }
    }

    proptest! {
        #[test]
        fn view_never_exceeds_cap_nor_contains_self(
            incoming in proptest::collection::vec((0u64..40, -50.0..50.0f64), 0..60),
            cap in 1usize..8,
        ) {
            let mut t = TMan::new(
                Euclidean2,
                TManConfig { view_cap: cap, m: 3, psi: 2 },
            );
            for chunk in incoming.chunks(5) {
                let batch: Vec<_> = chunk.iter().map(|&(id, x)| d(id, x, 0.0)).collect();
                t.integrate(NodeId::new(0), &[0.0, 0.0], &batch);
                prop_assert!(t.view_len() <= cap);
                prop_assert!(t.view_entries().iter().all(|e| e.id != NodeId::new(0)));
                // ids unique
                let mut ids: Vec<_> = t.view_entries().iter().map(|e| e.id).collect();
                ids.sort();
                let len = ids.len();
                ids.dedup();
                prop_assert_eq!(ids.len(), len);
            }
        }

        #[test]
        fn closest_is_sorted_by_distance(
            xs in proptest::collection::vec(-50.0..50.0f64, 1..20),
        ) {
            let mut t = TMan::new(Euclidean2, TManConfig::default());
            let batch: Vec<_> = xs.iter().enumerate()
                .map(|(i, &x)| d(i as u64 + 1, x, 0.0)).collect();
            t.integrate(NodeId::new(0), &[0.0, 0.0], &batch);
            let cl = t.closest(&[0.0, 0.0], 10);
            for w in cl.windows(2) {
                prop_assert!(w[0].pos[0].abs() <= w[1].pos[0].abs() + 1e-9);
            }
        }
    }
}
