//! The protocol-agnostic interface Polystyrene programs against.

use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_space::MetricSpace;
use rand::Rng;

/// A decentralized topology-construction protocol, as seen from the layers
/// above it (paper Fig. 3: Polystyrene only consumes "Neighbours" from this
/// layer and feeds it a "Node position").
///
/// Implementations are *passive state machines*: an external driver (the
/// round-based simulator or the threaded runtime) owns scheduling and
/// message delivery, which keeps protocols testable in isolation.
pub trait TopologyConstruction<S: MetricSpace> {
    /// Ages the local view by one round (descriptor staleness bookkeeping).
    fn begin_round(&mut self);

    /// The `k` view entries closest to `pos` — the neighborhood returned to
    /// Polystyrene (Step 1' of paper Fig. 4).
    fn closest(&self, pos: &S::Point, k: usize) -> Vec<Descriptor<S::Point>>;

    /// Selects the gossip partner for this round given the node's current
    /// position (T-Man: random among the ψ closest; Vicinity: mixes a
    /// random peer in).
    fn select_partner<R: Rng + ?Sized>(&self, pos: &S::Point, rng: &mut R) -> Option<NodeId>;

    /// Merges descriptors into the view: deduplicate by id keeping the
    /// freshest, drop `self_id`, re-rank by distance to `pos`, truncate to
    /// the view capacity.
    fn integrate(&mut self, self_id: NodeId, pos: &S::Point, incoming: &[Descriptor<S::Point>]);

    /// Drops every view entry the failure detector flags; returns the
    /// number removed.
    fn purge_failed(&mut self, is_failed: &dyn Fn(NodeId) -> bool) -> usize;

    /// Number of entries currently in the view.
    fn view_len(&self) -> usize;

    /// All view entries (for metrics and snapshots), borrowed in the
    /// protocol's internal order. Returning a slice instead of a cloned
    /// `Vec` keeps the per-round observation and lookup paths off the
    /// allocator — callers that need ownership clone explicitly.
    fn view_entries(&self) -> &[Descriptor<S::Point>];

    /// The position this view currently believes `id` is at, or `None`
    /// when `id` is not in the view.
    ///
    /// A borrow into the view — exchange setup does this lookup once per
    /// gossip partner, which made the old per-lookup clone measurable at
    /// large network sizes.
    fn position_of(&self, id: NodeId) -> Option<&S::Point> {
        self.view_entries()
            .iter()
            .find(|d| d.id == id)
            .map(|d| &d.pos)
    }
}
