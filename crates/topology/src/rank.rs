//! Distance-ranking helpers shared by the topology protocols, and the
//! spatial-grid candidate index that scales global nearest-neighbor
//! queries past the exhaustive-scan wall.
//!
//! Two performance disciplines apply throughout:
//!
//! * **rank once, compare cached** — distances are computed once per
//!   descriptor and sorted as plain keys, never recomputed inside a sort
//!   comparator (which costs two metric evaluations per comparison);
//! * **select before sorting** — when only the `k` best of `n` entries
//!   are needed, a linear-time partial selection bounds the sort to the
//!   `k`-prefix.

use polystyrene_membership::{Descriptor, IdHashMap, NodeId};
use polystyrene_space::{GridSpec, MetricSpace};
use std::collections::hash_map::Entry;

// Reusable decorate-sort-undecorate buffer, one per thread.
//
// Every gossip exchange of every node runs several ranking passes over
// ~100-entry views; a fresh key vector per pass made the allocator the
// hottest shared path of a large simulation. The buffer only ever grows
// to the largest view ranked on the thread (a few KB), and none of the
// ranking helpers call back into each other, so a simple per-thread
// scratch is safe.
thread_local! {
    static KEY_SCRATCH: std::cell::RefCell<Vec<(u64, NodeId, usize)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Fills the thread-local key scratch for `descriptors` and hands it to
/// `f`. See [`rank_keys_into`] for the key layout.
fn with_rank_keys<S: MetricSpace, R>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    f: impl FnOnce(&mut Vec<(u64, NodeId, usize)>) -> R,
) -> R {
    KEY_SCRATCH.with(|cell| {
        let mut keyed = cell.borrow_mut();
        rank_keys_into(space, target, descriptors, &mut keyed);
        f(&mut keyed)
    })
}

/// Returns the indices of `descriptors` sorted by increasing distance to
/// `target`, ties broken by node id for determinism.
///
/// Distances are evaluated once per descriptor (decorate–sort–undecorate),
/// not inside the comparator.
pub fn ranked_indices<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
) -> Vec<usize> {
    with_rank_keys(space, target, descriptors, |keyed| {
        keyed.sort_unstable_by(compare_keys);
        keyed.iter().map(|&(_, _, i)| i).collect()
    })
}

/// Returns the indices of the `k` descriptors closest to `target`, in
/// increasing distance order (ties by node id). Equivalent to
/// `ranked_indices(..).truncate(k)` but runs in `O(n + k log k)` via
/// partial selection instead of a full sort.
pub fn k_ranked_indices<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    k: usize,
) -> Vec<usize> {
    with_rank_keys(space, target, descriptors, |keyed| {
        select_k(keyed, k);
        keyed.iter().map(|&(_, _, i)| i).collect()
    })
}

/// Ranks like [`k_ranked_indices`] but never materializes the index
/// vector: `choose` receives the number of ranked candidates
/// (`min(k, len)`) and returns the rank to pick; the corresponding
/// descriptor index is returned. `None` on an empty input, with `choose`
/// never called — the allocation-free partner-selection path, which
/// runs once per node per gossip round.
pub fn choose_ranked<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    k: usize,
    choose: impl FnOnce(usize) -> usize,
) -> Option<usize> {
    with_rank_keys(space, target, descriptors, |keyed| {
        select_k(keyed, k);
        if keyed.is_empty() {
            None
        } else {
            Some(keyed[choose(keyed.len())].2)
        }
    })
}

/// Partially sorts `keyed` so its first `min(k, len)` entries are the k
/// smallest in increasing order, and truncates to them.
fn select_k(keyed: &mut Vec<(u64, NodeId, usize)>, k: usize) {
    let k = k.min(keyed.len());
    if k == 0 {
        keyed.clear();
        return;
    }
    if k < keyed.len() {
        keyed.select_nth_unstable_by(k - 1, compare_keys);
        keyed.truncate(k);
    }
    keyed.sort_unstable_by(compare_keys);
}

/// Distance-decorated index keys: `(total-order distance bits, id, index)`,
/// written into a caller-supplied buffer.
///
/// Ranking uses the *squared* distance ([`MetricSpace::distance_sq`]):
/// `sqrt` is strictly increasing, so the order is the same, and skipping
/// it both saves the call and ranks more precisely — two squared
/// distances can be distinct where their rounded square roots tie.
///
/// The value is stored through [`distance_sort_key`], so the sort and
/// selection passes compare plain integers instead of calling
/// `f64::total_cmp` — these ranking passes run a handful of times per node
/// per gossip round, which makes the comparator the hottest code in a
/// large simulation. The ordering is exactly the one `total_cmp` defines.
fn rank_keys_into<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    out: &mut Vec<(u64, NodeId, usize)>,
) {
    out.clear();
    out.extend(descriptors.iter().enumerate().map(|(i, d)| {
        (
            distance_sort_key(space.distance_sq(target, &d.pos)),
            d.id,
            i,
        )
    }));
}

/// Maps an `f64` to a `u64` whose unsigned order equals `f64::total_cmp`
/// order (the standard sign-flip trick: negative values have all bits
/// inverted, non-negative values just get the sign bit set).
fn distance_sort_key(d: f64) -> u64 {
    let bits = d.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

fn compare_keys(a: &(u64, NodeId, usize), b: &(u64, NodeId, usize)) -> std::cmp::Ordering {
    a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1))
}

/// The `k` descriptors of `descriptors` closest to `target` (cloned), in
/// increasing distance order.
pub fn k_closest<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    k: usize,
) -> Vec<Descriptor<S::Point>> {
    let mut out = Vec::new();
    k_closest_into(space, target, descriptors, k, &mut out);
    out
}

/// [`k_closest`] appending into a caller-owned (typically pooled) buffer
/// instead of allocating the result.
pub fn k_closest_into<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    k: usize,
    out: &mut Vec<Descriptor<S::Point>>,
) {
    with_rank_keys(space, target, descriptors, |keyed| {
        select_k(keyed, k);
        out.extend(keyed.iter().map(|&(_, _, i)| descriptors[i].clone()));
    });
}

/// The ids of the `k` closest descriptors, appended into `out` — the
/// clone-free twin of [`k_closest`] for callers that only need identities
/// (backup pools, migration candidate sets).
pub fn k_closest_ids_into<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    k: usize,
    out: &mut Vec<NodeId>,
) {
    with_rank_keys(space, target, descriptors, |keyed| {
        select_k(keyed, k);
        out.extend(keyed.iter().map(|&(_, id, _)| id));
    });
}

/// Visits the `k` closest descriptors in increasing distance order without
/// cloning anything — the zero-copy twin of [`k_closest`] for read-only
/// consumers (the engine's proximity observation path).
pub fn for_k_closest<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    k: usize,
    mut visit: impl FnMut(&Descriptor<S::Point>),
) {
    with_rank_keys(space, target, descriptors, |keyed| {
        select_k(keyed, k);
        for &(_, _, i) in keyed.iter() {
            visit(&descriptors[i]);
        }
    });
}

/// A spatial-grid candidate index over a set of positioned entries.
///
/// Buckets entries by the cell decomposition of the space
/// ([`MetricSpace::grid_spec`] — available for [`Torus2`], [`Ring`] and
/// other bounded coordinate spaces) and answers exact nearest-neighbor
/// queries by expanding Chebyshev rings of cells outward from the query
/// cell until no unvisited cell can beat the best candidate found.
///
/// For `n` roughly uniform entries indexed with `O(n)` cells, a query
/// inspects `O(1)` cells in expectation — replacing the `O(n)` exhaustive
/// scan that makes all-pairs workloads (e.g. per-round shape metrics over
/// every data point) quadratic.
///
/// Queries are **exact**, not approximate: the ring expansion only stops
/// when the lower bound `(radius − 1) · min_cell_extent` exceeds the best
/// distance found, so results always match an exhaustive scan. Callers
/// should fall back to exhaustive scanning for small `n` (the engine uses
/// a few hundred entries as the cutover), where building the index costs
/// more than it saves.
///
/// [`Torus2`]: polystyrene_space::torus::Torus2
/// [`Ring`]: polystyrene_space::ring::Ring
///
/// # Example
///
/// ```
/// use polystyrene_space::torus::Torus2;
/// use polystyrene_topology::rank::GridIndex;
///
/// let space = Torus2::new(100.0, 100.0);
/// let entries: Vec<(u64, [f64; 2])> =
///     (0..100).map(|i| (i, [(i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0])).collect();
/// let index = GridIndex::build(&space, entries).expect("torus supports grids");
/// // The nearest indexed entry to (12, 1) is entry 1 at (10, 0).
/// let (handle, dist) = index.nearest(&[12.0, 1.0]).unwrap();
/// assert_eq!(handle, 1);
/// assert!((dist - 5.0f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct GridIndex<S: MetricSpace> {
    space: S,
    spec: GridSpec,
    /// Flattened `nx × ny` buckets of indices into `entries`.
    cells: Vec<Vec<u32>>,
    entries: Vec<(u64, S::Point)>,
}

impl<S: MetricSpace> GridIndex<S> {
    /// Builds an index over `(handle, position)` entries, or `None` if the
    /// space offers no grid decomposition ([`MetricSpace::grid_spec`]).
    ///
    /// The cell count targets one entry per cell.
    pub fn build(space: &S, entries: impl IntoIterator<Item = (u64, S::Point)>) -> Option<Self> {
        let entries: Vec<(u64, S::Point)> = entries.into_iter().collect();
        let spec = space.grid_spec(entries.len().max(1))?;
        if spec.is_empty() {
            return None;
        }
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); spec.len()];
        for (i, (_, pos)) in entries.iter().enumerate() {
            let (cx, cy) = space
                .grid_cell(pos, &spec)
                .expect("grid_spec implies grid_cell");
            cells[cy * spec.nx + cx].push(i as u32);
        }
        Some(Self {
            space: space.clone(),
            spec,
            cells,
            entries,
        })
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry nearest to `q` as `(handle, distance)`, ties broken by
    /// the lowest handle (matching an exhaustive scan in handle order).
    pub fn nearest(&self, q: &S::Point) -> Option<(u64, f64)> {
        if self.entries.is_empty() {
            return None;
        }
        let (qx, qy) = self
            .space
            .grid_cell(q, &self.spec)
            .expect("index exists, so the space grids points");
        let mut best: Option<(u64, f64)> = None;
        let unit = self.spec.min_cell_extent();
        let max_radius = self.max_ring_radius();
        for radius in 0..=max_radius {
            // Every unvisited entry sits ≥ (radius − 1) cell extents away;
            // once that bound exceeds the best hit, the answer is exact.
            if let Some((_, bd)) = best {
                if radius >= 1 && unit > 0.0 && (radius - 1) as f64 * unit > bd {
                    break;
                }
            }
            self.for_ring_cells(qx, qy, radius, |cell| {
                for &ei in &self.cells[cell] {
                    let (handle, pos) = &self.entries[ei as usize];
                    let d = self.space.distance(q, pos);
                    let better = match best {
                        None => true,
                        Some((bh, bd)) => d < bd || (d == bd && *handle < bh),
                    };
                    if better {
                        best = Some((*handle, d));
                    }
                }
            });
        }
        best
    }

    /// The `k` entries nearest to `q`, in increasing distance order (ties
    /// by handle). Exact, like [`GridIndex::nearest`].
    pub fn k_nearest(&self, q: &S::Point, k: usize) -> Vec<(u64, f64)> {
        if self.entries.is_empty() || k == 0 {
            return Vec::new();
        }
        let (qx, qy) = self
            .space
            .grid_cell(q, &self.spec)
            .expect("index exists, so the space grids points");
        let mut found: Vec<(u64, f64)> = Vec::new();
        let unit = self.spec.min_cell_extent();
        let max_radius = self.max_ring_radius();
        for radius in 0..=max_radius {
            if found.len() >= k && unit > 0.0 && radius >= 1 {
                let kth = found[k - 1].1;
                if (radius - 1) as f64 * unit > kth {
                    break;
                }
            }
            self.for_ring_cells(qx, qy, radius, |cell| {
                for &ei in &self.cells[cell] {
                    let (handle, pos) = &self.entries[ei as usize];
                    let d = self.space.distance(q, pos);
                    found.push((*handle, d));
                }
            });
            found.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            // Truncating to k is exact: anything discarded ranks strictly
            // after the kept k-th entry by (distance, handle), and later
            // rings can only improve that k-th entry — a discarded entry
            // can never re-enter the final top-k.
            found.truncate(k);
        }
        found
    }

    /// Largest Chebyshev ring radius that can still reach new cells.
    fn max_ring_radius(&self) -> usize {
        let x_reach = if self.spec.wrap_x {
            self.spec.nx / 2
        } else {
            self.spec.nx.saturating_sub(1)
        };
        let y_reach = if self.spec.wrap_y {
            self.spec.ny / 2
        } else {
            self.spec.ny.saturating_sub(1)
        };
        x_reach.max(y_reach)
    }

    /// Visits every cell whose Chebyshev offset from `(qx, qy)` is exactly
    /// `radius`, each cell exactly once (wrap-aware).
    fn for_ring_cells(&self, qx: usize, qy: usize, radius: usize, mut visit: impl FnMut(usize)) {
        let spec = &self.spec;
        if radius == 0 {
            visit(qy * spec.nx + qx);
            return;
        }
        let r = radius as isize;
        // Vertical edges of the ring square: dx = ±radius, full dy range.
        for dx in axis_ring_offsets(radius, spec.nx, spec.wrap_x) {
            for dy in axis_range_offsets(r, spec.ny, spec.wrap_y) {
                if let Some(cell) = self.offset_cell(qx, qy, dx, dy) {
                    visit(cell);
                }
            }
        }
        // Horizontal edges: dy = ±radius, dx strictly inside the corners.
        for dy in axis_ring_offsets(radius, spec.ny, spec.wrap_y) {
            for dx in axis_range_offsets(r - 1, spec.nx, spec.wrap_x) {
                if let Some(cell) = self.offset_cell(qx, qy, dx, dy) {
                    visit(cell);
                }
            }
        }
    }

    /// Flattened cell index at signed offset `(dx, dy)` from `(qx, qy)`,
    /// or `None` when the offset leaves a non-wrapping axis.
    fn offset_cell(&self, qx: usize, qy: usize, dx: isize, dy: isize) -> Option<usize> {
        let spec = &self.spec;
        let cx = wrap_or_clip(qx as isize + dx, spec.nx, spec.wrap_x)?;
        let cy = wrap_or_clip(qy as isize + dy, spec.ny, spec.wrap_y)?;
        Some(cy * spec.nx + cx)
    }
}

/// The distinct signed offsets of magnitude exactly `radius` along an
/// axis of `n` cells. On a wrapping axis, offsets beyond the distinct
/// range (`-⌊(n−1)/2⌋ ..= ⌊n/2⌋`) alias cells already visited at smaller
/// radii and are skipped.
fn axis_ring_offsets(radius: usize, n: usize, wrap: bool) -> impl Iterator<Item = isize> {
    let r = radius as isize;
    let (max_pos, max_neg) = axis_reach(n, wrap);
    [r, -r]
        .into_iter()
        .filter(move |&o| (o > 0 && o <= max_pos) || (o < 0 && -o <= max_neg))
}

/// The distinct signed offsets of magnitude at most `radius` (clamped to
/// the axis's distinct range).
fn axis_range_offsets(radius: isize, n: usize, wrap: bool) -> impl Iterator<Item = isize> {
    let (max_pos, max_neg) = axis_reach(n, wrap);
    let lo = -(radius.min(max_neg));
    let hi = radius.min(max_pos);
    lo..=hi
}

/// Maximum distinct positive/negative offsets along an axis.
fn axis_reach(n: usize, wrap: bool) -> (isize, isize) {
    if wrap {
        ((n / 2) as isize, ((n - 1) / 2) as isize)
    } else {
        ((n - 1) as isize, (n - 1) as isize)
    }
}

/// Maps a signed cell coordinate into `[0, n)`: modular on wrapping axes,
/// `None` outside the range on clipped axes.
fn wrap_or_clip(c: isize, n: usize, wrap: bool) -> Option<usize> {
    if wrap {
        Some(c.rem_euclid(n as isize) as usize)
    } else if (0..n as isize).contains(&c) {
        Some(c as usize)
    } else {
        None
    }
}

/// Deduplicates descriptors by id, keeping the freshest (lowest age) copy
/// of each node — essential because Polystyrene nodes move, so stale
/// descriptors carry wrong positions.
pub fn dedup_freshest<P: Clone>(mut descriptors: Vec<Descriptor<P>>) -> Vec<Descriptor<P>> {
    dedup_freshest_in_place(&mut descriptors);
    descriptors
}

/// In-place [`dedup_freshest`]: first-occurrence order is preserved and a
/// duplicate replaces the kept copy only when strictly fresher (lower
/// age). The id→slot map makes each lookup O(1) and the compaction swaps
/// elements instead of reallocating — T-Man's integrate step calls this
/// on every view merge, so a linear scan per descriptor dominated
/// whole-round time at 10k+ nodes.
pub fn dedup_freshest_in_place<P>(descriptors: &mut Vec<Descriptor<P>>) {
    thread_local! {
        static SLOT_SCRATCH: std::cell::RefCell<IdHashMap<NodeId, usize>> =
            std::cell::RefCell::new(IdHashMap::default());
    }
    SLOT_SCRATCH.with(|cell| {
        let mut slot_by_id = cell.borrow_mut();
        slot_by_id.clear();
        slot_by_id.reserve(descriptors.len());
        dedup_freshest_with(descriptors, &mut slot_by_id);
    });
}

fn dedup_freshest_with<P>(
    descriptors: &mut Vec<Descriptor<P>>,
    slot_by_id: &mut IdHashMap<NodeId, usize>,
) {
    let mut w = 0;
    for r in 0..descriptors.len() {
        match slot_by_id.entry(descriptors[r].id) {
            Entry::Occupied(e) => {
                let slot = *e.get();
                if descriptors[r].age < descriptors[slot].age {
                    descriptors.swap(slot, r);
                }
            }
            Entry::Vacant(e) => {
                e.insert(w);
                descriptors.swap(w, r);
                w += 1;
            }
        }
    }
    descriptors.truncate(w);
}

/// Keeps only the `k` descriptors closest to `target` (same selection as
/// [`k_ranked_indices`]: distance, ties by id), compacting in place and
/// *preserving input order* among the survivors rather than sorting them.
///
/// For callers that treat their descriptor collection as an unordered
/// set — T-Man's view cap, where every read re-ranks on demand — this
/// skips the `O(k log k)` sort and the rebuild of the output vector that
/// a select-and-sort pass pays on every gossip exchange.
pub fn retain_k_closest<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &mut Vec<Descriptor<S::Point>>,
    k: usize,
) {
    if descriptors.len() <= k {
        return;
    }
    if k == 0 {
        descriptors.clear();
        return;
    }
    thread_local! {
        static KEEP_SCRATCH: std::cell::RefCell<Vec<bool>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    KEEP_SCRATCH.with(|cell| {
        let mut keep = cell.borrow_mut();
        keep.clear();
        keep.resize(descriptors.len(), false);
        with_rank_keys(space, target, descriptors, |keyed| {
            keyed.select_nth_unstable_by(k - 1, compare_keys);
            for &(_, _, i) in &keyed[..k] {
                keep[i] = true;
            }
        });
        let mut i = 0;
        descriptors.retain(|_| {
            let kept = keep[i];
            i += 1;
            kept
        });
    });
}

/// Removes descriptors whose id equals `self_id` (a node never keeps a
/// descriptor of itself in its own view).
pub fn drop_self<P>(descriptors: &mut Vec<Descriptor<P>>, self_id: NodeId) {
    descriptors.retain(|d| d.id != self_id);
}

/// Folds a single descriptor into a view that is already deduplicated and
/// within its capacity — the random-contact integration that runs once
/// per node per gossip round.
///
/// Produces exactly what the full merge pipeline ([`dedup_freshest`] then
/// [`retain_k_closest`]) would for `view ++ [d]`, exploiting the view
/// invariants to skip it: a known id only needs a strictly-fresher
/// replacement check (no distance evaluated at all), and a new id at
/// capacity only needs the single farthest entry of `view ∪ {d}` evicted.
pub fn insert_one_capped<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    view: &mut Vec<Descriptor<S::Point>>,
    cap: usize,
    d: &Descriptor<S::Point>,
) {
    if let Some(slot) = view.iter_mut().find(|e| e.id == d.id) {
        if d.age < slot.age {
            *slot = d.clone();
        }
        return;
    }
    if view.len() < cap {
        view.push(d.clone());
        return;
    }
    // At capacity: evict the maximum of `view ∪ {d}` under the ranking
    // order (distance, ties by id) — the one entry `retain_k_closest`
    // would drop from the merged set.
    let mut worst = (
        distance_sort_key(space.distance_sq(target, &d.pos)),
        d.id,
        usize::MAX,
    );
    for (i, e) in view.iter().enumerate() {
        let key = (
            distance_sort_key(space.distance_sq(target, &e.pos)),
            e.id,
            i,
        );
        if compare_keys(&key, &worst) == std::cmp::Ordering::Greater {
            worst = key;
        }
    }
    if worst.2 != usize::MAX {
        view.remove(worst.2);
        view.push(d.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;

    fn d(id: u64, x: f64) -> Descriptor<[f64; 2]> {
        Descriptor::new(NodeId::new(id), [x, 0.0])
    }

    #[test]
    fn ranks_by_distance() {
        let ds = vec![d(1, 5.0), d(2, 1.0), d(3, 3.0)];
        let idx = ranked_indices(&Euclidean2, &[0.0, 0.0], &ds);
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn rank_ties_break_by_id() {
        let ds = vec![d(9, 1.0), d(2, -1.0), d(5, 1.0)];
        let idx = ranked_indices(&Euclidean2, &[0.0, 0.0], &ds);
        // all at distance 1; order by id: 2, 5, 9 -> indices 1, 2, 0
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn k_closest_takes_prefix() {
        let ds = vec![d(1, 5.0), d(2, 1.0), d(3, 3.0)];
        let best = k_closest(&Euclidean2, &[0.0, 0.0], &ds, 2);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].id, NodeId::new(2));
        assert_eq!(best[1].id, NodeId::new(3));
        assert_eq!(k_closest(&Euclidean2, &[0.0, 0.0], &ds, 99).len(), 3);
    }

    #[test]
    fn k_closest_respects_torus_wrap() {
        let t = Torus2::new(10.0, 10.0);
        let ds = vec![d(1, 9.5), d(2, 3.0)];
        let best = k_closest(&t, &[0.0, 0.0], &ds, 1);
        assert_eq!(best[0].id, NodeId::new(1)); // 0.5 away across the seam
    }

    #[test]
    fn dedup_keeps_freshest() {
        let ds = vec![
            Descriptor::with_age(NodeId::new(1), [0.0, 0.0], 4),
            Descriptor::with_age(NodeId::new(1), [9.0, 0.0], 1),
            Descriptor::with_age(NodeId::new(2), [2.0, 0.0], 0),
        ];
        let out = dedup_freshest(ds);
        assert_eq!(out.len(), 2);
        let one = out.iter().find(|e| e.id == NodeId::new(1)).unwrap();
        assert_eq!(one.pos, [9.0, 0.0]);
        assert_eq!(one.age, 1);
    }

    #[test]
    fn drop_self_removes_own_id() {
        let mut ds = vec![d(1, 0.0), d(2, 1.0), d(1, 2.0)];
        drop_self(&mut ds, NodeId::new(1));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].id, NodeId::new(2));
    }

    #[test]
    fn insert_one_capped_matches_merge_pipeline() {
        use rand::{Rng, SeedableRng};
        let space = Torus2::new(20.0, 20.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for cap in [1usize, 2, 5, 8] {
            let mut fast: Vec<Descriptor<[f64; 2]>> = Vec::new();
            let mut slow: Vec<Descriptor<[f64; 2]>> = Vec::new();
            let target = [3.0, 4.0];
            for _ in 0..300 {
                // Small id range to exercise the known-id replacement path.
                let d = Descriptor::with_age(
                    NodeId::new(rng.random_range(0..12)),
                    [rng.random_range(0.0..20.0), rng.random_range(0.0..20.0)],
                    rng.random_range(0..4),
                );
                insert_one_capped(&space, &target, &mut fast, cap, &d);
                slow.push(d);
                dedup_freshest_in_place(&mut slow);
                retain_k_closest(&space, &target, &mut slow, cap);
                assert_eq!(
                    fast.iter().map(|e| (e.id, e.age)).collect::<Vec<_>>(),
                    slow.iter().map(|e| (e.id, e.age)).collect::<Vec<_>>(),
                    "cap {cap}"
                );
            }
        }
    }

    #[test]
    fn k_ranked_matches_full_rank_prefix() {
        let ds: Vec<_> = [5.0, 1.0, 3.0, -2.0, 8.0, 0.5, -7.0]
            .iter()
            .enumerate()
            .map(|(i, &x)| d(i as u64, x))
            .collect();
        let full = ranked_indices(&Euclidean2, &[0.0, 0.0], &ds);
        for k in 0..=ds.len() + 2 {
            let partial = k_ranked_indices(&Euclidean2, &[0.0, 0.0], &ds, k);
            assert_eq!(partial, full[..k.min(ds.len())], "k = {k}");
        }
    }

    // ------------------------------------------------------------------
    // GridIndex: exactness against the exhaustive scan it replaces
    // ------------------------------------------------------------------

    fn exhaustive_nearest<S: MetricSpace>(
        space: &S,
        entries: &[(u64, S::Point)],
        q: &S::Point,
    ) -> Option<(u64, f64)> {
        entries
            .iter()
            .map(|(h, p)| (*h, space.distance(q, p)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
    }

    fn torus_cloud(n: usize, w: f64, h: f64, seed: u64) -> Vec<(u64, [f64; 2])> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|i| (i, [rng.random_range(0.0..w), rng.random_range(0.0..h)]))
            .collect()
    }

    #[test]
    fn grid_nearest_matches_exhaustive_on_torus() {
        let space = Torus2::new(40.0, 20.0);
        let entries = torus_cloud(500, 40.0, 20.0, 1);
        let index = GridIndex::build(&space, entries.clone()).unwrap();
        assert_eq!(index.len(), 500);
        for (_, q) in torus_cloud(200, 40.0, 20.0, 2) {
            let got = index.nearest(&q);
            let want = exhaustive_nearest(&space, &entries, &q);
            assert_eq!(got.map(|(h, _)| h), want.map(|(h, _)| h), "query {q:?}");
            let (gd, wd) = (got.unwrap().1, want.unwrap().1);
            assert!((gd - wd).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_nearest_matches_exhaustive_on_ring() {
        use polystyrene_space::ring::Ring;
        let space = Ring::new(100.0);
        let entries: Vec<(u64, f64)> = (0..300u64).map(|i| (i, (i as f64 * 7.3) % 100.0)).collect();
        let index = GridIndex::build(&space, entries.clone()).unwrap();
        for step in 0..500 {
            let q = step as f64 * 0.2;
            assert_eq!(
                index.nearest(&q).map(|(h, _)| h),
                exhaustive_nearest(&space, &entries, &q).map(|(h, _)| h),
                "query {q}"
            );
        }
    }

    #[test]
    fn grid_handles_seam_queries_and_tiny_grids() {
        // Few entries → few cells: saturation paths (2·radius + 1 > n)
        // must neither miss nor double-count cells near the seam.
        let space = Torus2::new(10.0, 10.0);
        for n in [1usize, 2, 3, 5, 9] {
            let entries = torus_cloud(n, 10.0, 10.0, n as u64 + 10);
            let index = GridIndex::build(&space, entries.clone()).unwrap();
            for (_, q) in torus_cloud(60, 10.0, 10.0, 99) {
                assert_eq!(
                    index.nearest(&q).map(|(h, _)| h),
                    exhaustive_nearest(&space, &entries, &q).map(|(h, _)| h),
                    "n = {n}, query {q:?}"
                );
            }
        }
    }

    #[test]
    fn grid_k_nearest_matches_sorted_exhaustive() {
        let space = Torus2::new(40.0, 20.0);
        let entries = torus_cloud(300, 40.0, 20.0, 5);
        let index = GridIndex::build(&space, entries.clone()).unwrap();
        for (_, q) in torus_cloud(50, 40.0, 20.0, 6) {
            let got: Vec<u64> = index.k_nearest(&q, 7).into_iter().map(|(h, _)| h).collect();
            let mut all: Vec<(u64, f64)> = entries
                .iter()
                .map(|(h, p)| (*h, space.distance(&q, p)))
                .collect();
            all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            let want: Vec<u64> = all.into_iter().take(7).map(|(h, _)| h).collect();
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn grid_empty_and_unsupported_spaces() {
        let space = Torus2::new(10.0, 10.0);
        let empty: Vec<(u64, [f64; 2])> = Vec::new();
        let index = GridIndex::build(&space, empty).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.nearest(&[1.0, 1.0]), None);
        assert!(index.k_nearest(&[1.0, 1.0], 3).is_empty());
        // Euclidean space is unbounded: no grid decomposition.
        assert!(GridIndex::build(&Euclidean2, vec![(0u64, [0.0, 0.0])]).is_none());
    }
}
