//! Distance-ranking helpers shared by the topology protocols.

use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_space::MetricSpace;

/// Returns the indices of `descriptors` sorted by increasing distance to
/// `target`, ties broken by node id for determinism.
pub fn ranked_indices<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..descriptors.len()).collect();
    idx.sort_by(|&i, &j| {
        space
            .distance(target, &descriptors[i].pos)
            .total_cmp(&space.distance(target, &descriptors[j].pos))
            .then_with(|| descriptors[i].id.cmp(&descriptors[j].id))
    });
    idx
}

/// The `k` descriptors of `descriptors` closest to `target` (cloned), in
/// increasing distance order.
pub fn k_closest<S: MetricSpace>(
    space: &S,
    target: &S::Point,
    descriptors: &[Descriptor<S::Point>],
    k: usize,
) -> Vec<Descriptor<S::Point>> {
    ranked_indices(space, target, descriptors)
        .into_iter()
        .take(k)
        .map(|i| descriptors[i].clone())
        .collect()
}

/// Deduplicates descriptors by id, keeping the freshest (lowest age) copy
/// of each node — essential because Polystyrene nodes move, so stale
/// descriptors carry wrong positions.
pub fn dedup_freshest<P: Clone>(descriptors: Vec<Descriptor<P>>) -> Vec<Descriptor<P>> {
    let mut out: Vec<Descriptor<P>> = Vec::with_capacity(descriptors.len());
    for d in descriptors {
        match out.iter_mut().find(|e| e.id == d.id) {
            Some(existing) => {
                if d.age < existing.age {
                    *existing = d;
                }
            }
            None => out.push(d),
        }
    }
    out
}

/// Removes descriptors whose id equals `self_id` (a node never keeps a
/// descriptor of itself in its own view).
pub fn drop_self<P>(descriptors: &mut Vec<Descriptor<P>>, self_id: NodeId) {
    descriptors.retain(|d| d.id != self_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;

    fn d(id: u64, x: f64) -> Descriptor<[f64; 2]> {
        Descriptor::new(NodeId::new(id), [x, 0.0])
    }

    #[test]
    fn ranks_by_distance() {
        let ds = vec![d(1, 5.0), d(2, 1.0), d(3, 3.0)];
        let idx = ranked_indices(&Euclidean2, &[0.0, 0.0], &ds);
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn rank_ties_break_by_id() {
        let ds = vec![d(9, 1.0), d(2, -1.0), d(5, 1.0)];
        let idx = ranked_indices(&Euclidean2, &[0.0, 0.0], &ds);
        // all at distance 1; order by id: 2, 5, 9 -> indices 1, 2, 0
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn k_closest_takes_prefix() {
        let ds = vec![d(1, 5.0), d(2, 1.0), d(3, 3.0)];
        let best = k_closest(&Euclidean2, &[0.0, 0.0], &ds, 2);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].id, NodeId::new(2));
        assert_eq!(best[1].id, NodeId::new(3));
        assert_eq!(k_closest(&Euclidean2, &[0.0, 0.0], &ds, 99).len(), 3);
    }

    #[test]
    fn k_closest_respects_torus_wrap() {
        let t = Torus2::new(10.0, 10.0);
        let ds = vec![d(1, 9.5), d(2, 3.0)];
        let best = k_closest(&t, &[0.0, 0.0], &ds, 1);
        assert_eq!(best[0].id, NodeId::new(1)); // 0.5 away across the seam
    }

    #[test]
    fn dedup_keeps_freshest() {
        let ds = vec![
            Descriptor::with_age(NodeId::new(1), [0.0, 0.0], 4),
            Descriptor::with_age(NodeId::new(1), [9.0, 0.0], 1),
            Descriptor::with_age(NodeId::new(2), [2.0, 0.0], 0),
        ];
        let out = dedup_freshest(ds);
        assert_eq!(out.len(), 2);
        let one = out.iter().find(|e| e.id == NodeId::new(1)).unwrap();
        assert_eq!(one.pos, [9.0, 0.0]);
        assert_eq!(one.age, 1);
    }

    #[test]
    fn drop_self_removes_own_id() {
        let mut ds = vec![d(1, 0.0), d(2, 1.0), d(1, 2.0)];
        drop_self(&mut ds, NodeId::new(1));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].id, NodeId::new(2));
    }
}
