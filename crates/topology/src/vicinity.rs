//! A Vicinity-style topology-construction variant.
//!
//! Vicinity (Voulgaris & van Steen, Euro-Par'05 — the paper's reference
//! \[2\]) differs from T-Man in two ways that matter for robustness:
//! partner selection alternates between the closest neighbor and a random
//! view entry, and gossip buffers mix in random descriptors from the
//! peer-sampling layer ("augmented in some protocols by additional random
//! neighbors returned by the peer-sampling overlay", paper Sec. II-B).
//! The random component guarantees convergence from arbitrary states at
//! the price of slightly slower greedy progress.

use crate::rank::{
    choose_ranked, dedup_freshest, drop_self, k_closest, k_closest_into, k_ranked_indices,
};
use crate::traits::TopologyConstruction;
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_space::MetricSpace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Index-pool scratch for [`Vicinity::prepare_message_into`]'s random
    /// filler — reused across every message built on this thread.
    static FILLER_POOL: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Vicinity protocol parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VicinityConfig {
    /// Maximum number of descriptors kept in the view.
    pub view_cap: usize,
    /// Number of descriptors per gossip message.
    pub m: usize,
    /// Probability of selecting a uniformly random partner instead of the
    /// closest one (the explore/exploit mix).
    pub random_partner_probability: f64,
}

impl Default for VicinityConfig {
    fn default() -> Self {
        Self {
            view_cap: 100,
            m: 20,
            random_partner_probability: 0.2,
        }
    }
}

impl VicinityConfig {
    /// Validates parameter sanity; called by [`Vicinity::new`].
    ///
    /// # Panics
    ///
    /// Panics if a size parameter is zero or the probability is outside
    /// `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.view_cap > 0, "view_cap must be positive");
        assert!(self.m > 0, "m (profiles per message) must be positive");
        assert!(
            (0.0..=1.0).contains(&self.random_partner_probability),
            "random partner probability must be in [0, 1]"
        );
    }
}

/// Vicinity protocol state of one node.
///
/// # Example
///
/// ```
/// use polystyrene_space::prelude::*;
/// use polystyrene_membership::{Descriptor, NodeId};
/// use polystyrene_topology::{Vicinity, VicinityConfig, TopologyConstruction};
///
/// let mut v = Vicinity::new(Euclidean2, VicinityConfig::default());
/// v.integrate(NodeId::new(0), &[0.0, 0.0], &[
///     Descriptor::new(NodeId::new(1), [1.0, 0.0]),
/// ]);
/// assert_eq!(v.view_len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Vicinity<S: MetricSpace> {
    space: S,
    config: VicinityConfig,
    view: Vec<Descriptor<S::Point>>,
}

impl<S: MetricSpace> Vicinity<S> {
    /// Creates an empty Vicinity instance.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`VicinityConfig::validate`].
    pub fn new(space: S, config: VicinityConfig) -> Self {
        config.validate();
        Self {
            space,
            config,
            view: Vec::new(),
        }
    }

    /// The protocol parameters.
    pub fn config(&self) -> &VicinityConfig {
        &self.config
    }

    /// Refreshes the positions of view entries from `lookup`, returning
    /// how many entries changed — see
    /// [`crate::tman::TMan::refresh_positions`].
    pub fn refresh_positions<'a>(
        &mut self,
        mut lookup: impl FnMut(NodeId) -> Option<&'a S::Point>,
    ) -> usize
    where
        S::Point: 'a,
    {
        let mut changed = 0;
        for entry in &mut self.view {
            if let Some(current) = lookup(entry.id) {
                if *current != entry.pos {
                    entry.pos = current.clone();
                    changed += 1;
                }
                entry.age = 0;
            }
        }
        changed
    }

    /// Builds the gossip buffer for a partner at `target_pos`: own fresh
    /// descriptor, the best half for the recipient, plus random filler —
    /// Vicinity's exploration component.
    pub fn prepare_message<R: Rng + ?Sized>(
        &self,
        self_descriptor: Descriptor<S::Point>,
        target_pos: &S::Point,
        rng: &mut R,
    ) -> Vec<Descriptor<S::Point>> {
        let mut buffer = Vec::new();
        self.prepare_message_into(self_descriptor, target_pos, rng, &mut buffer);
        buffer
    }

    /// [`Vicinity::prepare_message`] appending into a caller-owned
    /// (typically pooled) buffer. The filler's index pool lives in
    /// thread-local scratch; rng draw sequence is identical (the draws
    /// depend only on the view length).
    pub fn prepare_message_into<R: Rng + ?Sized>(
        &self,
        self_descriptor: Descriptor<S::Point>,
        target_pos: &S::Point,
        rng: &mut R,
        buffer: &mut Vec<Descriptor<S::Point>>,
    ) {
        let m = self.config.m;
        let base = buffer.len();
        k_closest_into(
            &self.space,
            target_pos,
            &self.view,
            m.saturating_sub(1) / 2,
            buffer,
        );
        // Fill the rest with random entries for exploration.
        FILLER_POOL.with(|cell| {
            let mut pool = cell.borrow_mut();
            pool.clear();
            pool.extend(0..self.view.len());
            while buffer.len() - base + 1 < m && !pool.is_empty() {
                let k = rng.random_range(0..pool.len());
                let idx = pool.swap_remove(k);
                let d = &self.view[idx];
                if !buffer[base..].iter().any(|e| e.id == d.id) {
                    buffer.push(d.clone());
                }
            }
        });
        buffer.push(self_descriptor);
    }
}

impl<S: MetricSpace> TopologyConstruction<S> for Vicinity<S> {
    fn begin_round(&mut self) {
        for d in &mut self.view {
            d.age = d.age.saturating_add(1);
        }
    }

    fn closest(&self, pos: &S::Point, k: usize) -> Vec<Descriptor<S::Point>> {
        k_closest(&self.space, pos, &self.view, k)
    }

    fn select_partner<R: Rng + ?Sized>(&self, pos: &S::Point, rng: &mut R) -> Option<NodeId> {
        if self.view.is_empty() {
            return None;
        }
        if rng.random_bool(self.config.random_partner_probability) {
            let i = rng.random_range(0..self.view.len());
            return Some(self.view[i].id);
        }
        let pick = choose_ranked(&self.space, pos, &self.view, 1, |_| 0)
            .expect("view checked non-empty above");
        Some(self.view[pick].id)
    }

    fn integrate(&mut self, self_id: NodeId, pos: &S::Point, incoming: &[Descriptor<S::Point>]) {
        let mut merged = std::mem::take(&mut self.view);
        merged.extend(incoming.iter().cloned());
        drop_self(&mut merged, self_id);
        let merged = dedup_freshest(merged);
        let order = k_ranked_indices(&self.space, pos, &merged, self.config.view_cap);
        self.view = order.into_iter().map(|i| merged[i].clone()).collect();
    }

    fn purge_failed(&mut self, is_failed: &dyn Fn(NodeId) -> bool) -> usize {
        let before = self.view.len();
        self.view.retain(|d| !is_failed(d.id));
        before - self.view.len()
    }

    fn view_len(&self) -> usize {
        self.view.len()
    }

    fn view_entries(&self) -> &[Descriptor<S::Point>] {
        &self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(id: u64, x: f64) -> Descriptor<[f64; 2]> {
        Descriptor::new(NodeId::new(id), [x, 0.0])
    }

    fn cfg() -> VicinityConfig {
        VicinityConfig {
            view_cap: 6,
            m: 4,
            random_partner_probability: 0.3,
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn rejects_bad_probability() {
        let _ = Vicinity::new(
            Euclidean2,
            VicinityConfig {
                view_cap: 1,
                m: 1,
                random_partner_probability: 2.0,
            },
        );
    }

    #[test]
    fn integrate_caps_and_ranks() {
        let mut v = Vicinity::new(Euclidean2, cfg());
        let incoming: Vec<_> = (1..=10).map(|i| d(i, i as f64)).collect();
        v.integrate(NodeId::new(0), &[0.0, 0.0], &incoming);
        assert_eq!(v.view_len(), 6);
        assert_eq!(v.closest(&[0.0, 0.0], 1)[0].id, NodeId::new(1));
    }

    #[test]
    fn greedy_partner_is_closest_when_not_exploring() {
        let mut v = Vicinity::new(
            Euclidean2,
            VicinityConfig {
                random_partner_probability: 0.0,
                ..cfg()
            },
        );
        v.integrate(NodeId::new(0), &[0.0, 0.0], &[d(1, 3.0), d(2, 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(
                v.select_partner(&[0.0, 0.0], &mut rng),
                Some(NodeId::new(2))
            );
        }
    }

    #[test]
    fn exploring_partner_varies() {
        let mut v = Vicinity::new(
            Euclidean2,
            VicinityConfig {
                random_partner_probability: 1.0,
                ..cfg()
            },
        );
        v.integrate(
            NodeId::new(0),
            &[0.0, 0.0],
            &[d(1, 1.0), d(2, 2.0), d(3, 3.0)],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..60 {
            seen.insert(v.select_partner(&[0.0, 0.0], &mut rng).unwrap());
        }
        assert!(seen.len() >= 2, "random selection never explored: {seen:?}");
    }

    #[test]
    fn message_contains_self_and_respects_m() {
        let mut v = Vicinity::new(Euclidean2, cfg());
        let incoming: Vec<_> = (1..=6).map(|i| d(i, i as f64)).collect();
        v.integrate(NodeId::new(0), &[0.0, 0.0], &incoming);
        let mut rng = StdRng::seed_from_u64(3);
        let msg = v.prepare_message(d(0, 0.0), &[6.0, 0.0], &mut rng);
        assert!(msg.len() <= 4);
        assert!(msg.iter().any(|e| e.id == NodeId::new(0)));
        // No duplicate ids in the buffer.
        let mut ids: Vec<_> = msg.iter().map(|e| e.id).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn refresh_positions_mirrors_tman_semantics() {
        let mut v = Vicinity::new(Euclidean2, cfg());
        v.integrate(NodeId::new(0), &[0.0, 0.0], &[d(1, 1.0), d(2, 2.0)]);
        v.begin_round();
        let moved = [9.0, 0.0];
        let changed = v.refresh_positions(|id| (id == NodeId::new(1)).then_some(&moved));
        assert_eq!(changed, 1);
        let view = v.view_entries();
        assert_eq!(
            view.iter().find(|e| e.id == NodeId::new(1)).unwrap().pos,
            [9.0, 0.0]
        );
    }

    #[test]
    fn purge_and_age() {
        let mut v = Vicinity::new(Euclidean2, cfg());
        v.integrate(NodeId::new(0), &[0.0, 0.0], &[d(1, 1.0), d(2, 2.0)]);
        v.begin_round();
        assert!(v.view_entries().iter().all(|e| e.age == 1));
        assert_eq!(v.purge_failed(&|id| id == NodeId::new(1)), 1);
        assert_eq!(v.view_len(), 1);
    }
}
