//! Gossip-based topology construction for the Polystyrene reproduction.
//!
//! "Topology construction protocols seek to self-organize a network so that
//! each node ends up connected to its k closest nodes" (paper Sec. II-B).
//! Polystyrene is an add-on layer that works over *any* such protocol
//! (paper Fig. 3); this crate provides the two the paper names:
//!
//! * [`tman::TMan`] — T-Man (Jelasity, Montresor, Babaoglu — the paper's
//!   reference \[1\] and the protocol of its evaluation): ranked gossip
//!   exchanges of the `m` best descriptors with a partner drawn from the
//!   `ψ` closest neighbors;
//! * [`vicinity::Vicinity`] — a Vicinity-style variant (Voulgaris & van
//!   Steen, reference \[2\]) that mixes random peers into both partner
//!   selection and exchanged buffers;
//! * [`TopologyConstruction`] — the trait Polystyrene programs against, so
//!   the layer above never depends on which protocol runs below (the
//!   paper's modularity claim, Sec. II-C).
//!
//! # Example
//!
//! ```
//! use polystyrene_space::prelude::*;
//! use polystyrene_membership::{Descriptor, NodeId};
//! use polystyrene_topology::{TMan, TManConfig, TopologyConstruction};
//!
//! let space = Torus2::new(80.0, 40.0);
//! let mut tman = TMan::new(space, TManConfig::default());
//! tman.integrate(NodeId::new(0), &[0.0, 0.0], &[
//!     Descriptor::new(NodeId::new(1), [1.0, 0.0]),
//!     Descriptor::new(NodeId::new(2), [40.0, 20.0]),
//! ]);
//! let near = tman.closest(&[0.0, 0.0], 1);
//! assert_eq!(near[0].id, NodeId::new(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rank;
pub mod tman;
pub mod traits;
pub mod vicinity;

pub use tman::{tman_exchange, ExchangeStats, TMan, TManConfig};
pub use traits::TopologyConstruction;
pub use vicinity::{Vicinity, VicinityConfig};
