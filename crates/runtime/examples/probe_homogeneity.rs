//! Convergence probe for the threaded runtime: prints the observed
//! homogeneity / replication trajectory of a live cluster, which is how
//! the mailbox-starvation death spiral in the node run loop was found
//! (points/node exploded past 100 instead of settling at 1 + K).
//!
//! ```sh
//! cargo run --release -p polystyrene-runtime --example probe_homogeneity
//! ```

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_runtime::{Cluster, RuntimeConfig};
use polystyrene_space::shapes;
use polystyrene_space::torus::Torus2;
use std::time::Duration;

fn main() {
    let (cols, rows) = (8usize, 4usize);
    let mut c = RuntimeConfig::default();
    c.tick = Duration::from_millis(3);
    c.poly = PolystyreneConfig::builder().replication(4).build();
    let cluster = Cluster::spawn(
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        c,
    );
    for step in 1..=16 {
        cluster.await_ticks(step * 10, Duration::from_secs(10));
        let o = cluster.observe();
        println!(
            "ticks>={:<4} homogeneity {:.4}  points/node {:.2}  surviving {:.3}",
            step * 10,
            o.homogeneity,
            o.points_per_node,
            o.surviving_points
        );
    }
    cluster.shutdown();
}
