//! Spawn-time bootstrap sampling shared by every live deployment.
//!
//! Whatever carries a cluster's messages — in-process channels or real
//! sockets — what a founding node or a fresh joiner initially *knows*
//! must not depend on the transport. The contact-sampling helpers here
//! are that shared knowledge path; the in-process
//! [`crate::Cluster`] and the TCP deployment (`polystyrene-transport`)
//! both route spawn and inject bootstrapping through them.
//!
//! The substrate seam itself — kill, inject, step, observe — lives in
//! the experiment plane (`polystyrene-lab`'s `Substrate` trait), which
//! both deployments plug into; this module is only the spawn-time slice
//! they additionally share.

use crate::observe::NodeReport;
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_protocol::sample_bootstrap_contacts;
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::HashMap;

/// Draws up to `count` distinct bootstrap contacts for founding node
/// `own` from the target shape: the contact set every deployment seeds
/// its nodes' gossip layers with at spawn.
pub fn contacts_from_shape<P: Clone>(
    shape: &[P],
    own: usize,
    count: usize,
    rng: &mut StdRng,
) -> Vec<Descriptor<P>> {
    let n = shape.len();
    let mut contacts = Vec::new();
    for _ in 0..count * 2 {
        if contacts.len() >= count {
            break;
        }
        let j = rng.random_range(0..n);
        if j != own && !contacts.iter().any(|d: &Descriptor<P>| d.id.index() == j) {
            contacts.push(Descriptor::new(NodeId::new(j as u64), shape[j].clone()));
        }
    }
    contacts
}

/// Draws `count` bootstrap contacts for a fresh joiner from the alive
/// population, with positions resolved through the observation board —
/// a board-backed view over the one shared sampling path
/// ([`sample_bootstrap_contacts`]), so what "inject" bootstraps (and
/// how much entropy it consumes) cannot drift from the deterministic
/// substrates.
pub fn contacts_from_board<P: Clone>(
    alive: &[NodeId],
    snapshot: &HashMap<NodeId, NodeReport<P>>,
    count: usize,
    rng: &mut StdRng,
) -> Vec<Descriptor<P>> {
    sample_bootstrap_contacts(
        alive,
        &|id| snapshot.get(&id).map(|r| r.pos.clone()),
        count,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shape_contacts_exclude_self_and_duplicates() {
        let shape: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let contacts = contacts_from_shape(&shape, 3, 5, &mut rng);
        assert!(contacts.len() <= 5);
        assert!(contacts.iter().all(|d| d.id.index() != 3));
        let mut ids: Vec<usize> = contacts.iter().map(|d| d.id.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), contacts.len(), "no duplicate contacts");
    }

    #[test]
    fn board_contacts_resolve_positions_from_reports() {
        let mut snapshot: HashMap<NodeId, NodeReport<f64>> = HashMap::new();
        snapshot.insert(
            NodeId::new(4),
            NodeReport {
                pos: 4.5,
                guest_ids: Vec::new(),
                ghost_ids: Vec::new(),
                parked_ids: Vec::new(),
                stored_points: 0,
                ticks: 1,
                cost_units: 0,
                traffic_offered: 0,
                traffic_delivered: 0,
                traffic_dropped: 0,
                traffic_samples: Vec::new(),
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        // Node 9 never published: draws landing on it are skipped.
        let alive = vec![NodeId::new(4), NodeId::new(9)];
        let contacts = contacts_from_board(&alive, &snapshot, 8, &mut rng);
        assert!(!contacts.is_empty());
        assert!(contacts.iter().all(|d| d.id == NodeId::new(4)));
        assert!(contacts.iter().all(|d| d.pos == 4.5));
        assert!(contacts_from_board(&[], &snapshot, 4, &mut rng).is_empty());
    }
}
