//! Shared address book: node id → mailbox sender.
//!
//! Plays the role of the network fabric. Senders are cloned out of the
//! registry per message; sending to a crashed node (receiver dropped or
//! deregistered) silently loses the message, like a TCP connection reset
//! under crash-stop.

use crate::message::Message;
use crossbeam::channel::Sender;
use parking_lot::RwLock;
use polystyrene_membership::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// Thread-safe address book shared by every node of a [`crate::Cluster`].
pub struct Registry<P> {
    inner: RwLock<HashMap<NodeId, Sender<Message<P>>>>,
}

impl<P> Default for Registry<P> {
    fn default() -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
        }
    }
}

impl<P> Registry<P> {
    /// An empty registry behind an `Arc`, ready to share across threads.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a node's mailbox.
    pub fn register(&self, id: NodeId, sender: Sender<Message<P>>) {
        self.inner.write().insert(id, sender);
    }

    /// Removes a node (crash or shutdown). Subsequent sends to it are
    /// dropped.
    pub fn deregister(&self, id: NodeId) {
        self.inner.write().remove(&id);
    }

    /// Sends `message` to `to`; returns `false` if the destination is
    /// unknown or its mailbox is gone (message lost, crash-stop style).
    pub fn send(&self, to: NodeId, message: Message<P>) -> bool {
        let sender = self.inner.read().get(&to).cloned();
        match sender {
            Some(s) => s.send(message).is_ok(),
            None => false,
        }
    }

    /// Whether `id` currently has a registered mailbox — the runtime's
    /// answer to a protocol reachability probe.
    pub fn contains(&self, id: NodeId) -> bool {
        self.inner.read().contains_key(&id)
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot of the registered ids.
    pub fn ids(&self) -> Vec<NodeId> {
        self.inner.read().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn register_send_deregister() {
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, rx) = unbounded();
        registry.register(NodeId::new(1), tx);
        assert_eq!(registry.len(), 1);
        assert!(registry.contains(NodeId::new(1)));
        assert!(!registry.contains(NodeId::new(2)));
        assert!(registry.send(NodeId::new(1), Message::Shutdown));
        assert!(matches!(rx.recv().unwrap(), Message::Shutdown));
        registry.deregister(NodeId::new(1));
        assert!(!registry.send(NodeId::new(1), Message::Shutdown));
        assert!(registry.is_empty());
    }

    #[test]
    fn send_to_unknown_is_lost_not_fatal() {
        let registry: Arc<Registry<f64>> = Registry::new();
        assert!(!registry.send(NodeId::new(42), Message::Shutdown));
    }

    #[test]
    fn send_to_dropped_receiver_reports_loss() {
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, rx) = unbounded();
        registry.register(NodeId::new(1), tx);
        drop(rx); // the node crashed without deregistering
        assert!(!registry.send(NodeId::new(1), Message::Shutdown));
    }

    #[test]
    fn ids_snapshot() {
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, _rx) = unbounded();
        registry.register(NodeId::new(7), tx);
        assert_eq!(registry.ids(), vec![NodeId::new(7)]);
    }
}
