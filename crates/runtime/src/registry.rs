//! Shared address book: node id → mailbox sender.
//!
//! Plays the role of the network fabric. Senders are cloned out of the
//! registry per message; sending to a crashed node (receiver dropped or
//! deregistered) silently loses the message, like a TCP connection reset
//! under crash-stop.
//!
//! An optional [`NetworkModel`] can be installed to inject *transit*
//! loss on top of the crash-stop semantics: a dropped message vanishes
//! silently (the sender still sees success — loss in flight is not
//! observable, unlike a dead mailbox), so live-cluster scenarios can
//! exercise lossy links through the same model the discrete-event
//! simulator uses. The runtime honors the loss probability only:
//! latency would need timers the in-process fabric does not have (a
//! model's delay is ignored), and no runtime code path installs a
//! partition mask — scripted [`ScenarioEvent::Partition`] windows are
//! the discrete-event simulator's domain and are a documented no-op on
//! a cluster.
//!
//! [`ScenarioEvent::Partition`]: polystyrene_protocol::ScenarioEvent::Partition

use crate::message::Message;
use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use polystyrene_membership::NodeId;
use polystyrene_protocol::{Fate, NetworkModel};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe address book shared by every node of a [`crate::Cluster`].
pub struct Registry<P> {
    inner: RwLock<HashMap<NodeId, Sender<Message<P>>>>,
    /// Transit-fault injection, if any. Serialized behind a mutex: the
    /// model's entropy stream must not interleave racily even though
    /// sends come from every node thread.
    network: Mutex<Option<Box<dyn NetworkModel>>>,
    /// Messages the installed model has dropped in transit.
    injected_drops: AtomicU64,
}

impl<P> Default for Registry<P> {
    fn default() -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
            network: Mutex::new(None),
            injected_drops: AtomicU64::new(0),
        }
    }
}

impl<P> Registry<P> {
    /// An empty registry behind an `Arc`, ready to share across threads.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a node's mailbox.
    pub fn register(&self, id: NodeId, sender: Sender<Message<P>>) {
        self.inner.write().insert(id, sender);
    }

    /// Removes a node (crash or shutdown). Subsequent sends to it are
    /// dropped.
    pub fn deregister(&self, id: NodeId) {
        self.inner.write().remove(&id);
    }

    /// Installs a network model; every subsequent protocol message is
    /// routed through it (control messages — shutdown — are exempt: the
    /// harness must always be able to stop a node).
    pub fn install_network(&self, model: Box<dyn NetworkModel>) {
        *self.network.lock() = Some(model);
    }

    /// Protocol messages the installed network model dropped in transit.
    pub fn injected_drops(&self) -> u64 {
        self.injected_drops.load(Ordering::Relaxed)
    }

    /// Sends `message` to `to`; returns `false` if the destination is
    /// unknown or its mailbox is gone (message lost, crash-stop style).
    ///
    /// The crash-stop contract is unchanged by an installed
    /// [`NetworkModel`]: a model-injected drop returns `true` when the
    /// destination exists — transit loss is invisible to the sender,
    /// only a dead mailbox is observable — so delivery-failure feedback
    /// (and the purging built on it) stays exactly as accurate as on a
    /// lossless fabric.
    pub fn send(&self, to: NodeId, message: Message<P>) -> bool {
        if let Message::Protocol { from, wire } = &message {
            let dropped = {
                let mut network = self.network.lock();
                match network.as_mut() {
                    Some(model) => {
                        matches!(model.route(*from, to, wire.channel(), 0), Fate::Drop)
                    }
                    None => false,
                }
            };
            if dropped {
                self.injected_drops.fetch_add(1, Ordering::Relaxed);
                // Report exactly what the real send path would have: a
                // registered node whose mailbox receiver is gone (crashed
                // without deregistering) is observably dead on both
                // paths. `contains_key` alone answered `true` for such a
                // node here and `false` below — the crash-stop feedback
                // (and the view purging built on it) must not depend on
                // whether the loss draw fired.
                return self
                    .inner
                    .read()
                    .get(&to)
                    .is_some_and(|s| !s.is_disconnected());
            }
        }
        let sender = self.inner.read().get(&to).cloned();
        match sender {
            Some(s) => s.send(message).is_ok(),
            None => false,
        }
    }

    /// Whether `id` currently has a registered, *live* mailbox — the
    /// runtime's answer to a protocol reachability probe. A node whose
    /// receiver is gone (crashed without deregistering) is dead to the
    /// send paths, so probes must agree — crash-stop observability
    /// cannot depend on which path asks.
    pub fn contains(&self, id: NodeId) -> bool {
        self.inner
            .read()
            .get(&id)
            .is_some_and(|s| !s.is_disconnected())
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot of the registered ids.
    pub fn ids(&self) -> Vec<NodeId> {
        self.inner.read().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn register_send_deregister() {
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, rx) = unbounded();
        registry.register(NodeId::new(1), tx);
        assert_eq!(registry.len(), 1);
        assert!(registry.contains(NodeId::new(1)));
        assert!(!registry.contains(NodeId::new(2)));
        assert!(registry.send(NodeId::new(1), Message::Shutdown));
        assert!(matches!(rx.recv().unwrap(), Message::Shutdown));
        registry.deregister(NodeId::new(1));
        assert!(!registry.send(NodeId::new(1), Message::Shutdown));
        assert!(registry.is_empty());
    }

    #[test]
    fn send_to_unknown_is_lost_not_fatal() {
        let registry: Arc<Registry<f64>> = Registry::new();
        assert!(!registry.send(NodeId::new(42), Message::Shutdown));
    }

    #[test]
    fn send_to_dropped_receiver_reports_loss() {
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, rx) = unbounded();
        registry.register(NodeId::new(1), tx);
        drop(rx); // the node crashed without deregistering
        assert!(!registry.send(NodeId::new(1), Message::Shutdown));
    }

    #[test]
    fn ids_snapshot() {
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, _rx) = unbounded();
        registry.register(NodeId::new(7), tx);
        assert_eq!(registry.ids(), vec![NodeId::new(7)]);
    }

    #[test]
    fn injected_loss_is_silent_but_counted() {
        use polystyrene_protocol::{FaultyNetwork, LinkProfile, Wire};
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, rx) = unbounded();
        registry.register(NodeId::new(1), tx);
        registry.install_network(Box::new(FaultyNetwork::new(
            LinkProfile {
                latency: 0,
                jitter: 0,
                loss: 1.0, // everything vanishes in transit
            },
            0,
        )));
        let delivered = registry.send(
            NodeId::new(1),
            Message::Protocol {
                from: NodeId::new(0),
                wire: Wire::Heartbeat,
            },
        );
        assert!(
            delivered,
            "transit loss must be invisible to the sender (the mailbox exists)"
        );
        assert_eq!(registry.injected_drops(), 1);
        assert!(rx.try_recv().is_err(), "the message must not arrive");
        // Crash-stop reporting stays exact: a dead mailbox is observable
        // even while the model is dropping everything.
        assert!(!registry.send(
            NodeId::new(9),
            Message::Protocol {
                from: NodeId::new(0),
                wire: Wire::Heartbeat,
            },
        ));
        // Control messages bypass the model entirely.
        assert!(registry.send(NodeId::new(1), Message::Shutdown));
        assert!(matches!(rx.recv().unwrap(), Message::Shutdown));
    }

    #[test]
    fn crash_stop_reporting_is_consistent_under_injected_loss() {
        use polystyrene_protocol::{FaultyNetwork, LinkProfile, Wire};
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, rx) = unbounded();
        registry.register(NodeId::new(1), tx);
        drop(rx); // crashed without deregistering: still in the book
        let protocol = || Message::Protocol {
            from: NodeId::new(0),
            wire: Wire::Heartbeat,
        };
        // Real send path: the dead mailbox is observable.
        assert!(!registry.send(NodeId::new(1), protocol()));
        // Reachability probes agree: registered-but-dead is dead.
        assert!(
            !registry.contains(NodeId::new(1)),
            "a probe must not report a crashed node reachable while sends report it dead"
        );
        // Injected-drop path must report the same verdict, not
        // `contains_key` (which would say `true` and suppress the
        // PeerUnreachable feedback the failure detector relies on).
        registry.install_network(Box::new(FaultyNetwork::new(
            LinkProfile {
                latency: 0,
                jitter: 0,
                loss: 1.0,
            },
            0,
        )));
        assert!(
            !registry.send(NodeId::new(1), protocol()),
            "a crashed-but-registered node must be reported dead on the drop path too"
        );
        assert_eq!(registry.injected_drops(), 1);
    }
}
