//! The per-node thread: a mailbox-and-timer driver around the sans-IO
//! [`ProtocolNode`].
//!
//! All protocol logic — RPS shuffles, T-Man exchanges, recovery, backup,
//! migration, heartbeat bookkeeping — lives in `polystyrene-protocol`
//! and is byte-for-byte the same state machine the cycle simulator
//! drives. This thread only does IO: it feeds incoming mailbox messages
//! to [`ProtocolNode::on_event`], fires [`ProtocolNode::on_tick`] on a
//! wall-clock timer, and executes the returned effects over its
//! [`NodeFabric`] — probes answered from the fabric's address book,
//! sends mapped to transport deliveries (in-process mailboxes or framed
//! TCP, the loop cannot tell), failed deliveries reported back as
//! [`Event::PeerUnreachable`].

use crate::config::RuntimeConfig;
use crate::fabric::NodeFabric;
use crate::message::Message;
use crate::observe::{NodeReport, ObservationBoard};
use polystyrene::prelude::{DataPoint, PolyState};
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_protocol::{CostModel, Effect, EffectSink, Event, ProtocolNode, Wire};
use polystyrene_space::MetricSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Upper bound on messages handled in the pre-tick drain, so a sustained
/// arrival stream can delay a round but never suppress it. Far above any
/// per-round backlog a healthy cluster produces (a node receives a few
/// dozen messages per round at most).
const MAX_DRAIN_PER_TICK: usize = 512;

/// Bound on the recent resolved-query samples a node republishes to the
/// observation board: enough for a stable tail-latency estimate, small
/// enough that the per-tick report clone stays cheap.
const MAX_TRAFFIC_SAMPLES: usize = 128;

/// Everything a node thread owns.
pub struct NodeRuntime<S: MetricSpace> {
    node: ProtocolNode<S>,
    tick: std::time::Duration,
    fabric: Box<dyn NodeFabric<S::Point>>,
    board: Arc<ObservationBoard<S::Point>>,
    rx: crossbeam::channel::Receiver<Message<S::Point>>,
    rng: StdRng,
    cost_model: CostModel,
    /// Cumulative units this node has handed to the fabric, in the
    /// paper's prices — charged at the send boundary whether or not the
    /// delivery succeeds (the bytes left the node either way).
    sent_units: u64,
    /// Thread-owned effect buffer every protocol call pushes into — one
    /// buffer (and payload pool) for the thread's lifetime instead of a
    /// fresh `Vec` per tick and per inbound message.
    sink: EffectSink<S::Point>,
    /// Reusable dispatch queue of [`Self::execute`].
    queue: VecDeque<Effect<S::Point>>,
    /// Cumulative traffic-plane gateway counters, published every tick.
    traffic_offered: u64,
    traffic_delivered: u64,
    traffic_dropped: u64,
    /// Trailing window of resolved-query `(hops, latency)` samples.
    traffic_recent: Vec<(u32, u64)>,
    /// This gateway's admission gauge, shared with the cluster's offer
    /// path: the offer side adds admitted queries, this thread subtracts
    /// them as it drains the injections — the backpressure signal that
    /// makes the offer path shed instead of flooding a slow mailbox.
    ingress: Arc<AtomicUsize>,
}

impl<S: MetricSpace> NodeRuntime<S> {
    /// Builds a node with its initial data point (`Some`) or as a fresh
    /// empty joiner (`None`), seeded with bootstrap contacts.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        space: S,
        config: RuntimeConfig,
        origin: Option<DataPoint<S::Point>>,
        position: S::Point,
        contacts: Vec<Descriptor<S::Point>>,
        fabric: Box<dyn NodeFabric<S::Point>>,
        board: Arc<ObservationBoard<S::Point>>,
        rx: crossbeam::channel::Receiver<Message<S::Point>>,
        ingress: Arc<AtomicUsize>,
    ) -> Self {
        let poly = match origin {
            Some(point) => PolyState::with_initial_point(point),
            None => PolyState::empty_at(position),
        };
        let node = ProtocolNode::new(
            id,
            space,
            config.protocol(),
            poly,
            contacts.clone(),
            contacts,
        );
        Self {
            node,
            tick: config.tick,
            fabric,
            board,
            rx,
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(id.as_u64() * 0x9E37)),
            cost_model: config.cost,
            sent_units: 0,
            sink: EffectSink::new(),
            queue: VecDeque::new(),
            traffic_offered: 0,
            traffic_delivered: 0,
            traffic_dropped: 0,
            traffic_recent: Vec::new(),
            ingress,
        }
    }

    /// The thread body: alternate message handling and ticks until a
    /// shutdown arrives or the channel closes.
    pub fn run(mut self) {
        let tick = self.tick;
        let mut next_tick = Instant::now() + tick;
        'outer: loop {
            let now = Instant::now();
            if now < next_tick {
                match self.rx.recv_timeout(next_tick - now) {
                    Ok(Message::Shutdown) => break,
                    Ok(msg) => self.handle(msg),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            } else {
                // Deadline passed. Drain the mailbox backlog before
                // ticking: a node that has fallen behind must not run
                // catch-up ticks back-to-back while replies starve in its
                // queue — that is a death spiral (migration replies time
                // out, the late-reply absorb path duplicates guests, the
                // extra points make every subsequent tick slower). The
                // drain is bounded so messages arriving *during* the drain
                // cannot starve the tick itself: a node whose arrival rate
                // matches its handling rate must still heartbeat.
                for _ in 0..MAX_DRAIN_PER_TICK {
                    match self.rx.try_recv() {
                        Ok(Message::Shutdown) => break 'outer,
                        Ok(msg) => self.handle(msg),
                        Err(crossbeam::channel::TryRecvError::Disconnected) => break 'outer,
                        Err(crossbeam::channel::TryRecvError::Empty) => break,
                    }
                }
                self.on_tick();
                // Fixed-delay pacing, deliberately: `tick` is the idle gap
                // *between* rounds, not a fixed rate. Scheduling relative
                // to now (instead of `next_tick + tick`) is the node's
                // backpressure: when handling and ticking outrun the
                // period, the protocol clock slows with the machine.
                // Pinning the rate here looks more faithful but is
                // unstable — migration timeouts are tick-denominated, so
                // a node that ticks on schedule while its partners lag
                // times out exchanges that are merely slow, and the
                // late-reply absorb path then duplicates guests without
                // bound (observed: >100 stored points/node in debug
                // builds, vs the 1 + K steady state).
                next_tick = Instant::now() + tick;
            }
        }
        self.board.remove(self.node.id());
    }

    /// One local protocol round, then publish to the observation plane.
    fn on_tick(&mut self) {
        let mut sink = std::mem::take(&mut self.sink);
        sink.clear();
        self.node.on_tick_into(&mut self.rng, &mut sink);
        self.execute(&mut sink);
        self.sink = sink;
        // Fold the tick's traffic accounting into the cumulative
        // counters the board publishes; the sample window is bounded so
        // the per-tick report clone cannot grow with load.
        let (offered, delivered, dropped) = self.node.take_traffic(&mut self.traffic_recent);
        self.traffic_offered += offered;
        self.traffic_delivered += delivered;
        self.traffic_dropped += dropped;
        if self.traffic_recent.len() > MAX_TRAFFIC_SAMPLES {
            let excess = self.traffic_recent.len() - MAX_TRAFFIC_SAMPLES;
            self.traffic_recent.drain(..excess);
        }
        self.board.publish(
            self.node.id(),
            NodeReport {
                pos: self.node.poly.pos.clone(),
                guest_ids: self.node.poly.guest_ids(),
                ghost_ids: self
                    .node
                    .poly
                    .ghosts
                    .values()
                    .flat_map(|pts| pts.iter().map(|p| p.id))
                    .collect(),
                parked_ids: self.node.parked_point_ids().collect(),
                stored_points: self.node.poly.stored_points(),
                ticks: self.node.clock(),
                cost_units: self.sent_units,
                traffic_offered: self.traffic_offered,
                traffic_delivered: self.traffic_delivered,
                traffic_dropped: self.traffic_dropped,
                traffic_samples: self.traffic_recent.clone(),
            },
        );
    }

    fn handle(&mut self, message: Message<S::Point>) {
        match message {
            Message::Protocol { from, wire } => {
                // Self-addressed query wires are gateway injections from
                // the cluster's offer path — the only self-sends in the
                // system. Handling one frees its admission-gauge slots.
                if from == self.node.id() {
                    let injected = match &wire {
                        Wire::Query { .. } => 1,
                        Wire::QueryBatch { queries } => queries.len(),
                        _ => 0,
                    };
                    if injected > 0 {
                        // Saturating: a harness injecting queries by hand
                        // (no gauge charge) must not wrap the gauge into
                        // a permanently-full reading.
                        let _ =
                            self.ingress
                                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                                    Some(v.saturating_sub(injected))
                                });
                    }
                }
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                self.node
                    .on_event_into(Event::Message { from, wire }, &mut self.rng, &mut sink);
                self.execute(&mut sink);
                self.sink = sink;
            }
            Message::Shutdown => unreachable!("handled by the run loop"),
        }
    }

    /// Executes effects against the real transport: probes consult the
    /// fabric's address book, sends go through the fabric, and a send
    /// whose destination is observably gone comes back as
    /// [`Event::PeerUnreachable`] (message lost, crash-stop style).
    fn execute(&mut self, sink: &mut EffectSink<S::Point>) {
        let mut queue = std::mem::take(&mut self.queue);
        debug_assert!(queue.is_empty());
        queue.extend(sink.drain());
        while let Some(effect) = queue.pop_front() {
            match effect {
                Effect::Probe { peer, channel } => {
                    // No ground truth here: the address book is the best
                    // knowledge available, and the peer's position stays
                    // whatever the view believes (`pos: None`).
                    let event = if self.fabric.contains(peer) {
                        Event::ProbeOk {
                            peer,
                            channel,
                            pos: None,
                        }
                    } else {
                        Event::PeerUnreachable { peer, channel }
                    };
                    self.node.on_event_into(event, &mut self.rng, sink);
                    queue.extend(sink.drain());
                }
                Effect::Send { to, wire } => {
                    let channel = wire.channel();
                    self.sent_units += self.cost_model.wire_units(&wire);
                    // The fabric takes ownership of the wire (in-process
                    // delivery hands the very buffer to the receiver), so
                    // there is nothing to recycle on this path.
                    let delivered = self.fabric.send(to, wire);
                    if !delivered {
                        let event = Event::PeerUnreachable { peer: to, channel };
                        self.node.on_event_into(event, &mut self.rng, sink);
                        queue.extend(sink.drain());
                    }
                }
            }
        }
        self.queue = queue;
    }
}
