//! The per-node thread: the full Polystyrene stack driven by a mailbox
//! and a wall-clock tick.
//!
//! The protocol state machines are exactly the ones the simulator uses —
//! `PeerSampling`, `TMan`, `PolyState` — only the *driver* differs: here
//! messages arrive asynchronously and rounds are local ticks, so nodes
//! are never synchronized, mirroring a real deployment.

use crate::config::RuntimeConfig;
use crate::message::Message;
use crate::observe::{NodeReport, ObservationBoard};
use crate::registry::Registry;
use polystyrene::prelude::*;
use polystyrene::recovery::recover;
use polystyrene_membership::{Descriptor, NodeId, PeerSampling};
use polystyrene_space::MetricSpace;
use polystyrene_topology::{TMan, TopologyConstruction};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Upper bound on messages handled in the pre-tick drain, so a sustained
/// arrival stream can delay a round but never suppress it. Far above any
/// per-round backlog a healthy cluster produces (a node receives a few
/// dozen messages per round at most).
const MAX_DRAIN_PER_TICK: usize = 512;

/// Everything a node thread owns.
pub struct NodeRuntime<S: MetricSpace> {
    id: NodeId,
    space: S,
    config: RuntimeConfig,
    rps: PeerSampling<S::Point>,
    tman: TMan<S>,
    poly: PolyState<S::Point>,
    registry: Arc<Registry<S::Point>>,
    board: Arc<ObservationBoard<S::Point>>,
    rx: crossbeam::channel::Receiver<Message<S::Point>>,
    rng: StdRng,
    /// Heartbeat bookkeeping: last tick we heard from a monitored peer.
    last_seen: HashMap<NodeId, u64>,
    tick_count: u64,
    /// In-flight migration: the partner and the tick it was initiated.
    pending_migration: Option<(NodeId, u64)>,
}

impl<S: MetricSpace> NodeRuntime<S> {
    /// Builds a node with its initial data point (`Some`) or as a fresh
    /// empty joiner (`None`), seeded with bootstrap contacts.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        space: S,
        config: RuntimeConfig,
        origin: Option<DataPoint<S::Point>>,
        position: S::Point,
        contacts: Vec<Descriptor<S::Point>>,
        registry: Arc<Registry<S::Point>>,
        board: Arc<ObservationBoard<S::Point>>,
        rx: crossbeam::channel::Receiver<Message<S::Point>>,
    ) -> Self {
        let mut rps = PeerSampling::new(config.rps_view_cap, config.rps_shuffle_len);
        rps.bootstrap(contacts.clone());
        let mut tman = TMan::new(space.clone(), config.tman);
        tman.integrate(id, &position, &contacts);
        let poly = match origin {
            Some(point) => PolyState::with_initial_point(point),
            None => PolyState::empty_at(position),
        };
        Self {
            id,
            space,
            config,
            rps,
            tman,
            poly,
            registry,
            board,
            rx,
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(id.as_u64() * 0x9E37)),
            last_seen: HashMap::new(),
            tick_count: 0,
            pending_migration: None,
        }
    }

    fn is_failed(&self, id: NodeId) -> bool {
        match self.last_seen.get(&id) {
            Some(&seen) => {
                self.tick_count.saturating_sub(seen) > self.config.heartbeat_timeout_ticks as u64
            }
            None => false, // never monitored: no opinion
        }
    }

    fn heard_from(&mut self, id: NodeId) {
        self.last_seen.insert(id, self.tick_count);
    }

    /// The thread body: alternate message handling and ticks until a
    /// shutdown arrives or the channel closes.
    pub fn run(mut self) {
        let tick = self.config.tick;
        let mut next_tick = Instant::now() + tick;
        'outer: loop {
            let now = Instant::now();
            if now < next_tick {
                match self.rx.recv_timeout(next_tick - now) {
                    Ok(Message::Shutdown) => break,
                    Ok(msg) => self.handle(msg),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            } else {
                // Deadline passed. Drain the mailbox backlog before
                // ticking: a node that has fallen behind must not run
                // catch-up ticks back-to-back while replies starve in its
                // queue — that is a death spiral (migration replies time
                // out, the late-reply absorb path duplicates guests, the
                // extra points make every subsequent tick slower). The
                // drain is bounded so messages arriving *during* the drain
                // cannot starve the tick itself: a node whose arrival rate
                // matches its handling rate must still heartbeat.
                for _ in 0..MAX_DRAIN_PER_TICK {
                    match self.rx.try_recv() {
                        Ok(Message::Shutdown) => break 'outer,
                        Ok(msg) => self.handle(msg),
                        Err(crossbeam::channel::TryRecvError::Disconnected) => break 'outer,
                        Err(crossbeam::channel::TryRecvError::Empty) => break,
                    }
                }
                self.on_tick();
                // Fixed-delay pacing, deliberately: `tick` is the idle gap
                // *between* rounds, not a fixed rate. Scheduling relative
                // to now (instead of `next_tick + tick`) is the node's
                // backpressure: when handling and ticking outrun the
                // period, the protocol clock slows with the machine.
                // Pinning the rate here looks more faithful but is
                // unstable — migration timeouts are tick-denominated, so
                // a node that ticks on schedule while its partners lag
                // times out exchanges that are merely slow, and the
                // late-reply absorb path then duplicates guests without
                // bound (observed: >100 stored points/node in debug
                // builds, vs the 1 + K steady state).
                next_tick = Instant::now() + tick;
            }
        }
        self.board.remove(self.id);
    }

    /// One local protocol round.
    fn on_tick(&mut self) {
        self.tick_count += 1;

        // Heartbeats along the backup relationships (Sec. III-A suggests
        // "a reactive ping mechanism, or heartbeats").
        let monitored: Vec<NodeId> = self
            .poly
            .backups
            .iter()
            .copied()
            .chain(self.poly.ghosts.keys().copied())
            .collect();
        for peer in monitored {
            self.registry.send(peer, Message::Heartbeat { from: self.id });
        }

        // Peer sampling shuffle.
        if let Some(partner) = self.rps.begin_round() {
            let request = self
                .rps
                .make_request(self_descriptor_of(self), partner, &mut self.rng);
            let delivered = self.registry.send(
                partner,
                Message::RpsRequest {
                    from: self.id,
                    descriptors: request,
                },
            );
            if !delivered {
                self.rps.remove_failed(|id| id == partner);
            }
        }

        // T-Man exchange with a partner drawn from the ψ closest.
        if let Some(partner) = self.tman.select_partner(&self.poly.pos, &mut self.rng) {
            if let Some(entry) = self
                .tman
                .view_entries()
                .into_iter()
                .find(|d| d.id == partner)
            {
                let buffer = self.tman.prepare_message(self_descriptor_of(self), &entry.pos);
                let delivered = self.registry.send(
                    partner,
                    Message::TManRequest {
                        from: self.id,
                        from_pos: self.poly.pos.clone(),
                        descriptors: buffer,
                    },
                );
                if !delivered {
                    self.tman.purge_failed(&|id| id == partner);
                }
            }
        }

        // Recovery (Algorithm 2) against the heartbeat detector.
        let failed: Vec<NodeId> = self
            .poly
            .ghosts
            .keys()
            .copied()
            .filter(|&q| self.is_failed(q))
            .collect();
        if !failed.is_empty() {
            recover(&mut self.poly, |id| failed.contains(&id));
            self.poly.project(&self.space, &self.config.poly, &mut self.rng);
        }

        // Backup (Algorithm 1).
        let pool = self
            .rps
            .random_peers(self.config.poly.replication * 4 + 4, &mut self.rng);
        let mut pool_iter = pool.into_iter();
        let self_id = self.id;
        let failed_backups: Vec<NodeId> = self
            .poly
            .backups
            .iter()
            .copied()
            .filter(|&b| self.is_failed(b))
            .collect();
        let pushes = plan_backups(
            &mut self.poly,
            self_id,
            self.config.poly.replication,
            |id| failed_backups.contains(&id),
            || pool_iter.next(),
        );
        for push in pushes {
            self.heard_from_if_new(push.target);
            let delivered = self.registry.send(
                push.target,
                Message::BackupPush {
                    from: self.id,
                    points: push.points,
                },
            );
            if !delivered {
                // Lost replica: the target will be detected via heartbeat
                // timeout and replaced next tick.
            }
        }

        // Migration (Algorithm 3): one in-flight exchange at a time.
        if let Some((_, started)) = self.pending_migration {
            if self.tick_count.saturating_sub(started)
                > self.config.migration_timeout_ticks as u64
            {
                self.pending_migration = None; // partner presumed dead
            }
        }
        if self.pending_migration.is_none() && !self.poly.guests.is_empty() {
            let mut candidates: Vec<NodeId> = self
                .tman
                .closest(&self.poly.pos, self.config.poly.psi)
                .into_iter()
                .map(|d| d.id)
                .collect();
            if let Some(r) = self.rps.random_peer(&mut self.rng) {
                candidates.push(r);
            }
            candidates.retain(|&c| c != self.id && !self.is_failed(c));
            if !candidates.is_empty() {
                let q = candidates[self.rng.random_range(0..candidates.len())];
                let delivered = self.registry.send(
                    q,
                    Message::MigrationRequest {
                        from: self.id,
                        from_pos: self.poly.pos.clone(),
                        guests: self.poly.guests.clone(),
                    },
                );
                if delivered {
                    self.pending_migration = Some((q, self.tick_count));
                }
            }
        }

        // Publish to the observation plane.
        self.board.publish(
            self.id,
            NodeReport {
                pos: self.poly.pos.clone(),
                guest_ids: self.poly.guest_ids(),
                ghost_ids: self
                    .poly
                    .ghosts
                    .values()
                    .flat_map(|pts| pts.iter().map(|p| p.id))
                    .collect(),
                stored_points: self.poly.stored_points(),
                ticks: self.tick_count,
            },
        );
    }

    fn heard_from_if_new(&mut self, id: NodeId) {
        let now = self.tick_count;
        self.last_seen.entry(id).or_insert(now);
    }

    fn handle(&mut self, message: Message<S::Point>) {
        match message {
            Message::Heartbeat { from } => self.heard_from(from),
            Message::RpsRequest { from, descriptors } => {
                self.heard_from(from);
                let reply = self
                    .rps
                    .handle_request(self.id, &descriptors, &mut self.rng);
                self.registry.send(
                    from,
                    Message::RpsReply {
                        from: self.id,
                        sent: descriptors,
                        descriptors: reply,
                    },
                );
            }
            Message::RpsReply {
                from,
                sent,
                descriptors,
            } => {
                self.heard_from(from);
                self.rps.handle_reply(self.id, &sent, &descriptors);
            }
            Message::TManRequest {
                from,
                from_pos,
                descriptors,
            } => {
                self.heard_from(from);
                let reply = self.tman.prepare_message(self_descriptor_of(self), &from_pos);
                let pos = self.poly.pos.clone();
                self.tman.integrate(self.id, &pos, &descriptors);
                self.registry.send(
                    from,
                    Message::TManReply {
                        from: self.id,
                        descriptors: reply,
                    },
                );
            }
            Message::TManReply { from, descriptors } => {
                self.heard_from(from);
                let pos = self.poly.pos.clone();
                self.tman.integrate(self.id, &pos, &descriptors);
            }
            Message::MigrationRequest {
                from,
                from_pos,
                guests,
            } => {
                self.heard_from(from);
                if self.pending_migration.is_some() {
                    // Busy: bounce the guests back untouched (the pairwise
                    // exclusivity requirement of Algorithm 3).
                    self.registry.send(
                        from,
                        Message::MigrationReply {
                            from: self.id,
                            points: guests,
                            busy: true,
                        },
                    );
                    return;
                }
                let mut all = guests;
                all.extend(std::mem::take(&mut self.poly.guests));
                let all = polystyrene::datapoint::dedup_by_id(all);
                let (for_requester, for_me) = split(
                    &self.space,
                    self.config.poly.split,
                    all,
                    &from_pos,
                    &self.poly.pos,
                    self.config.poly.diameter_exact_threshold,
                    &mut self.rng,
                );
                self.poly.guests = for_me;
                self.poly.project(&self.space, &self.config.poly, &mut self.rng);
                self.registry.send(
                    from,
                    Message::MigrationReply {
                        from: self.id,
                        points: for_requester,
                        busy: false,
                    },
                );
            }
            Message::MigrationReply { from, points, busy } => {
                self.heard_from(from);
                if self.pending_migration.map(|(q, _)| q) == Some(from) {
                    self.pending_migration = None;
                    if !busy {
                        self.poly.guests = points;
                        self.poly.project(&self.space, &self.config.poly, &mut self.rng);
                    }
                } else if !busy {
                    // Late reply after our timeout: the responder already
                    // gave these points away, so we are their only owner —
                    // dropping them would lose data. Absorb instead; any
                    // duplication with our kept guests dedups by id.
                    self.poly.absorb_guests(points);
                    self.poly.project(&self.space, &self.config.poly, &mut self.rng);
                }
            }
            Message::BackupPush { from, points } => {
                self.heard_from(from);
                self.poly.store_ghosts(from, points);
            }
            Message::Shutdown => unreachable!("handled by the run loop"),
        }
    }
}

/// Fresh descriptor of the node (free function to dodge borrow conflicts
/// in `&mut self` contexts).
fn self_descriptor_of<S: MetricSpace>(node: &NodeRuntime<S>) -> Descriptor<S::Point> {
    Descriptor::new(node.id, node.poly.pos.clone())
}
