//! Cluster harness: spawns node threads, injects crashes and fresh
//! joiners, observes global health, and shuts everything down.

use crate::config::RuntimeConfig;
use crate::fabric::RegistryFabric;
use crate::harness::{contacts_from_board, contacts_from_shape};
use crate::message::Message;
use crate::node::NodeRuntime;
use crate::observe::{observe, ObservationBoard};
use crate::registry::Registry;
use crate::traffic::GatewayTraffic;
use parking_lot::Mutex;
use polystyrene::prelude::{DataPoint, PointId};
use polystyrene_membership::{Descriptor, NodeId};
use polystyrene_protocol::observe::RoundObservation;
use polystyrene_protocol::select_region_victims;
use polystyrene_space::MetricSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running Polystyrene deployment: one thread per node.
///
/// See the crate-level docs for an end-to-end example.
pub struct Cluster<S: MetricSpace> {
    space: S,
    config: RuntimeConfig,
    registry: Arc<Registry<S::Point>>,
    board: Arc<ObservationBoard<S::Point>>,
    original_points: Vec<DataPoint<S::Point>>,
    handles: Mutex<HashMap<NodeId, JoinHandle<()>>>,
    next_id: Mutex<u64>,
    rng: Mutex<StdRng>,
    /// Traffic-plane offer state: the dedicated gateway-draw stream,
    /// the qid counter, the cumulative shed count and the batching
    /// scratch, shared with the TCP deployment via [`GatewayTraffic`].
    traffic: Mutex<GatewayTraffic>,
    /// Per-gateway admission gauges (queries accepted into a mailbox
    /// but not yet handled by its node thread); the offer path sheds
    /// against these instead of flooding a slow node.
    ingress: Mutex<HashMap<NodeId, Arc<AtomicUsize>>>,
}

impl<S: MetricSpace> Cluster<S> {
    /// Spawns one node per position of `shape`, each founding the data
    /// point at its position.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or the configuration is invalid.
    pub fn spawn(space: S, shape: Vec<S::Point>, config: RuntimeConfig) -> Self {
        assert!(!shape.is_empty(), "cannot spawn an empty cluster");
        config.validate();
        let registry: Arc<Registry<S::Point>> = Registry::new();
        if config.link.loss > 0.0 {
            // Same fault model as the discrete-event simulator, driving
            // the registry's transit-loss hook. Loss is the only link
            // parameter the runtime honors, so the hook — a per-send
            // lock — is installed only when it can actually drop
            // something; a lossless profile (even with latency set)
            // keeps the hot path lock-free.
            registry.install_network(Box::new(polystyrene_protocol::FaultyNetwork::new(
                config.link,
                config.seed ^ 0x6c6f_7373, // "loss": decouple from node rngs
            )));
        }
        let board: Arc<ObservationBoard<S::Point>> = ObservationBoard::new();
        let original_points: Vec<DataPoint<S::Point>> = shape
            .iter()
            .enumerate()
            .map(|(i, p)| DataPoint::new(PointId::new(i as u64), p.clone()))
            .collect();
        let cluster = Self {
            space,
            config,
            registry,
            board,
            original_points: original_points.clone(),
            handles: Mutex::new(HashMap::new()),
            next_id: Mutex::new(shape.len() as u64),
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
            traffic: Mutex::new(GatewayTraffic::new(config.seed)),
            ingress: Mutex::new(HashMap::new()),
        };
        for (i, pos) in shape.iter().enumerate() {
            let contacts = {
                let mut rng = cluster.rng.lock();
                contacts_from_shape(&shape, i, cluster.config.bootstrap_contacts, &mut rng)
            };
            cluster.spawn_node(
                NodeId::new(i as u64),
                Some(original_points[i].clone()),
                pos.clone(),
                contacts,
            );
        }
        cluster
    }

    fn spawn_node(
        &self,
        id: NodeId,
        origin: Option<DataPoint<S::Point>>,
        position: S::Point,
        contacts: Vec<Descriptor<S::Point>>,
    ) {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.registry.register(id, tx);
        let ingress = Arc::new(AtomicUsize::new(0));
        self.ingress.lock().insert(id, Arc::clone(&ingress));
        let node = NodeRuntime::new(
            id,
            self.space.clone(),
            self.config,
            origin,
            position,
            contacts,
            Box::new(RegistryFabric::new(id, Arc::clone(&self.registry))),
            Arc::clone(&self.board),
            rx,
            ingress,
        );
        let handle = std::thread::Builder::new()
            .name(format!("poly-{id}"))
            .spawn(move || node.run())
            .expect("failed to spawn node thread");
        self.handles.lock().insert(id, handle);
    }

    /// The original data points (the target shape).
    pub fn original_points(&self) -> &[DataPoint<S::Point>] {
        &self.original_points
    }

    /// Ids currently registered (alive).
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.registry.ids()
    }

    /// Protocol messages lost in transit by the injected link faults
    /// (zero on an ideal link).
    pub fn injected_drops(&self) -> u64 {
        self.registry.injected_drops()
    }

    /// Hard-crashes a node: deregisters it (its mailbox contents are
    /// lost to peers) and stops its thread. No goodbye messages — peers
    /// must notice via heartbeat timeouts. Returns whether the node was
    /// alive.
    pub fn kill(&self, id: NodeId) -> bool {
        let handle = self.handles.lock().remove(&id);
        match handle {
            Some(handle) => {
                // Deregister first so no further protocol messages reach it,
                // then stop the thread.
                self.registry.send(id, Message::Shutdown);
                self.registry.deregister(id);
                self.ingress.lock().remove(&id);
                let _ = handle.join();
                self.board.remove(id);
                true
            }
            None => false,
        }
    }

    /// Whether `id` is currently alive (registered).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.registry.contains(id)
    }

    /// Crashes every founding node whose original data point satisfies
    /// `predicate` — the paper's correlated regional failure, with
    /// victim selection shared with every other substrate through
    /// [`select_region_victims`]. Returns the crashed ids.
    pub fn kill_region(&self, predicate: impl Fn(&S::Point) -> bool + Send + Sync) -> Vec<NodeId> {
        let victims =
            select_region_victims(&self.original_points, &predicate, &|id| self.is_alive(id));
        victims.into_iter().filter(|&id| self.kill(id)).collect()
    }

    /// Injects a fresh node with no data points at `position`
    /// (the paper's Phase 3 joiners), bootstrapped from alive contacts.
    /// Returns its id.
    pub fn inject(&self, position: S::Point) -> NodeId {
        let id = {
            let mut next = self.next_id.lock();
            let id = NodeId::new(*next);
            *next += 1;
            id
        };
        let alive = self.alive_ids();
        let contacts: Vec<Descriptor<S::Point>> = {
            let mut rng = self.rng.lock();
            contacts_from_board(
                &alive,
                &self.board.snapshot(),
                self.config.bootstrap_contacts,
                &mut rng,
            )
        };
        self.spawn_node(id, None, position, contacts);
        id
    }

    /// Lets the cluster run for a wall-clock duration.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Offers one application query per key, each issued through a
    /// uniformly random alive gateway node. Keys that draw the same
    /// gateway share one self-addressed
    /// [`polystyrene_protocol::Wire::QueryBatch`] envelope in its
    /// mailbox; admission is bounded per gateway
    /// ([`crate::GATEWAY_INGRESS_BOUND`]), and batches refused at a full
    /// gateway are *shed* — counted in the observation plane's
    /// `traffic.shed`, separate from queries that expired in flight.
    pub fn offer_traffic(&self, keys: &[S::Point], ttl: u32) {
        let alive = self.alive_ids();
        let mut traffic = self.traffic.lock();
        let ingress = self.ingress.lock();
        traffic.offer(
            keys,
            ttl,
            &alive,
            |id| ingress.get(&id).cloned(),
            |gateway, wire| {
                self.registry.send(
                    gateway,
                    Message::Protocol {
                        from: gateway,
                        wire,
                    },
                );
            },
        );
    }

    /// Queries shed at gateway ingress so far (cumulative).
    pub fn shed_queries(&self) -> u64 {
        self.traffic.lock().shed()
    }

    /// Blocks until every alive node has executed at least `ticks` local
    /// rounds (with a safety timeout of `max_wait`).
    pub fn await_ticks(&self, ticks: u64, max_wait: Duration) {
        let deadline = std::time::Instant::now() + max_wait;
        loop {
            let obs = self.observe();
            // Every *registered* node must have published and progressed —
            // counting only publishers would return before slow starters
            // ever appear on the board.
            if obs.alive_nodes >= self.registry.len() && obs.alive_nodes > 0 && obs.ticks >= ticks {
                return;
            }
            if std::time::Instant::now() > deadline {
                return;
            }
            std::thread::sleep(self.config.tick);
        }
    }

    /// Measures cluster health from the observation plane, reported as
    /// the unified [`RoundObservation`] record. The traffic counters are
    /// cumulative (node threads publish running totals), including the
    /// offer-side shed count stamped here.
    pub fn observe(&self) -> RoundObservation {
        let mut obs = observe(
            &self.space,
            &self.original_points,
            &self.board.snapshot(),
            self.config.area,
        );
        obs.traffic.shed = self.traffic.lock().shed();
        obs
    }

    /// Orderly shutdown: stops every node thread and joins it.
    pub fn shutdown(&self) {
        let ids: Vec<NodeId> = self.handles.lock().keys().copied().collect();
        for id in ids {
            self.registry.send(id, Message::Shutdown);
            self.registry.deregister(id);
        }
        let handles: Vec<(NodeId, JoinHandle<()>)> = self.handles.lock().drain().collect();
        for (_, handle) in handles {
            let _ = handle.join();
        }
    }
}

impl<S: MetricSpace> Drop for Cluster<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    fn fast_config() -> RuntimeConfig {
        let mut c = RuntimeConfig::default();
        c.tick = Duration::from_millis(2);
        c.poly = polystyrene::prelude::PolystyreneConfig::builder()
            .replication(3)
            .build();
        c
    }

    fn spawn_grid(cols: usize, rows: usize) -> Cluster<Torus2> {
        Cluster::spawn(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            fast_config(),
        )
    }

    #[test]
    fn cluster_spawns_and_reports() {
        let cluster = spawn_grid(6, 4);
        cluster.await_ticks(5, Duration::from_secs(5));
        let obs = cluster.observe();
        assert_eq!(obs.alive_nodes, 24);
        // Migrations may have points in flight at snapshot time; replicas
        // keep them alive, so survival stays (near) perfect.
        assert!(
            obs.surviving_points >= 0.95,
            "points vanished: {}",
            obs.surviving_points
        );
        assert!(obs.ticks >= 5);
        cluster.shutdown();
    }

    #[test]
    fn replication_reaches_one_plus_k() {
        let cluster = spawn_grid(6, 4);
        cluster.await_ticks(10, Duration::from_secs(5));
        let obs = cluster.observe();
        // Every node hosts its own point plus K=3 replicas of others.
        assert!(
            obs.points_per_node > 3.0,
            "replication never took hold: {} points/node",
            obs.points_per_node
        );
        cluster.shutdown();
    }

    #[test]
    fn kill_is_crash_stop() {
        let cluster = spawn_grid(4, 4);
        cluster.await_ticks(3, Duration::from_secs(5));
        assert!(cluster.kill(NodeId::new(0)));
        assert!(!cluster.kill(NodeId::new(0)), "second kill must be a no-op");
        let obs = cluster.observe();
        assert_eq!(obs.alive_nodes, 15);
        cluster.shutdown();
    }

    #[test]
    fn catastrophic_failure_recovers_points() {
        let cluster = spawn_grid(8, 4);
        // Let replication converge first.
        cluster.await_ticks(12, Duration::from_secs(10));
        let killed = cluster.kill_region(shapes::in_right_half(8.0));
        assert_eq!(killed.len(), 16);
        // Wait for heartbeat timeouts + recovery + migration. Polled with
        // a generous deadline rather than one fixed sleep: on a loaded CI
        // box (the whole workspace tests in parallel) thread scheduling
        // can stretch the detection/recovery pipeline severalfold.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut obs = cluster.observe();
        while std::time::Instant::now() < deadline {
            cluster.run_for(Duration::from_millis(100));
            obs = cluster.observe();
            if obs.surviving_points > 0.75 && obs.homogeneity < 2.0 {
                break;
            }
        }
        assert_eq!(obs.alive_nodes, 16);
        // K=3 over a 50% failure ⇒ ~94% of points expected to survive;
        // leave slack for heartbeat-detection races.
        assert!(
            obs.surviving_points > 0.75,
            "too many points lost: {}",
            obs.surviving_points
        );
        // And the survivors spread back over the shape.
        assert!(
            obs.homogeneity < 2.0,
            "shape not recovered: homogeneity {}",
            obs.homogeneity
        );
        cluster.shutdown();
    }

    #[test]
    fn injection_spawns_empty_joiners() {
        let cluster = spawn_grid(4, 4);
        cluster.await_ticks(5, Duration::from_secs(5));
        let id = cluster.inject([0.5, 0.5]);
        assert!(id.as_u64() >= 16);
        cluster.run_for(Duration::from_millis(200));
        let obs = cluster.observe();
        assert_eq!(obs.alive_nodes, 17);
        cluster.shutdown();
    }

    #[test]
    fn lossy_cluster_still_replicates_and_counts_drops() {
        let mut config = fast_config();
        config.link = polystyrene_protocol::LinkProfile {
            latency: 0,
            jitter: 0,
            loss: 0.10,
        };
        let cluster = Cluster::spawn(Torus2::new(6.0, 4.0), shapes::torus_grid(6, 4, 1.0), config);
        cluster.await_ticks(12, Duration::from_secs(10));
        let obs = cluster.observe();
        assert_eq!(obs.alive_nodes, 24);
        assert!(
            cluster.injected_drops() > 0,
            "a 10% lossy fabric that dropped nothing is not lossy"
        );
        // The protocol absorbs the loss: replication still takes hold and
        // no point is destroyed (loss can only duplicate, never destroy).
        assert!(
            obs.points_per_node > 2.5,
            "replication never took hold under loss: {} points/node",
            obs.points_per_node
        );
        assert!(
            obs.surviving_points >= 0.95,
            "points vanished under transit loss: {}",
            obs.surviving_points
        );
        cluster.shutdown();
    }

    #[test]
    fn traffic_queries_resolve_on_the_live_cluster() {
        let cluster = spawn_grid(6, 4);
        cluster.await_ticks(10, Duration::from_secs(5));
        let keys: Vec<[f64; 2]> = (0..6).map(|i| [i as f64 + 0.5, 1.5]).collect();
        for _ in 0..10 {
            cluster.offer_traffic(&keys, 32);
            cluster.run_for(Duration::from_millis(10));
        }
        // Every offered query eventually resolves or expires; poll with a
        // deadline rather than a fixed sleep (loaded CI boxes stretch the
        // pipeline).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut obs = cluster.observe();
        while std::time::Instant::now() < deadline {
            obs = cluster.observe();
            if obs.traffic.offered >= 60
                && obs.traffic.delivered + obs.traffic.dropped >= obs.traffic.offered
            {
                break;
            }
            cluster.run_for(Duration::from_millis(20));
        }
        assert!(
            obs.traffic.offered >= 60,
            "gateways must register offered queries: {:?}",
            obs.traffic
        );
        assert!(
            obs.traffic.availability() > 0.8,
            "a healthy cluster must serve most queries: {:?}",
            obs.traffic
        );
        cluster.shutdown();
    }

    #[test]
    fn oversized_offer_is_shed_at_the_gateway() {
        use crate::traffic::GATEWAY_INGRESS_BOUND;
        // One node ⇒ one gateway: a single offer larger than the ingress
        // bound must be refused whole, deterministically (the gauge
        // cannot admit it no matter how fast the node drains).
        let cluster = spawn_grid(1, 1);
        cluster.await_ticks(2, Duration::from_secs(5));
        let oversized = GATEWAY_INGRESS_BOUND + 44;
        let keys = vec![[0.5, 0.5]; oversized];
        cluster.offer_traffic(&keys, 8);
        assert_eq!(cluster.shed_queries(), oversized as u64);
        let obs = cluster.observe();
        assert_eq!(obs.traffic.shed, oversized as u64);
        // A batch that fits is admitted and eventually registers.
        cluster.offer_traffic(&keys[..8], 8);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut obs = cluster.observe();
        while std::time::Instant::now() < deadline && obs.traffic.offered < 8 {
            cluster.run_for(Duration::from_millis(10));
            obs = cluster.observe();
        }
        assert!(
            obs.traffic.offered >= 8,
            "an in-bound batch must be admitted: {:?}",
            obs.traffic
        );
        assert_eq!(
            obs.traffic.shed, oversized as u64,
            "admission must not shed"
        );
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let cluster = spawn_grid(3, 3);
        cluster.shutdown();
        cluster.shutdown();
        drop(cluster); // Drop impl must not panic on an empty cluster
    }
}
