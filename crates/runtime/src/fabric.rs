//! The node-side transport abstraction: how one node's thread reaches
//! the rest of the deployment.
//!
//! [`crate::node::NodeRuntime`] is a mailbox-and-timer driver around the
//! sans-IO `ProtocolNode`; everything transport-specific — how a wire
//! message actually travels, and how the address book answers a
//! reachability probe — sits behind [`NodeFabric`]. The in-process
//! deployment implements it with the shared [`Registry`]
//! ([`RegistryFabric`]); the TCP substrate (`polystyrene-transport`)
//! implements it with framed sockets and a per-peer connection cache.
//! The node loop is byte-for-byte the same over both.

use crate::message::Message;
use crate::registry::Registry;
use polystyrene_membership::NodeId;
use polystyrene_protocol::Wire;
use std::sync::Arc;

/// One node's view of the deployment's message fabric.
///
/// Methods take `&mut self` because a fabric may own per-node mutable
/// state (a connection cache, buffered writers); each node thread owns
/// its fabric exclusively.
pub trait NodeFabric<P>: Send {
    /// Delivers `wire` from this node to `to`. Returns `false` only for
    /// an *observable* delivery failure (unknown destination, dead
    /// mailbox, refused or reset connection) — the crash-stop signal the
    /// node surfaces as `Event::PeerUnreachable`. Silent transit loss
    /// must return `true`.
    fn send(&mut self, to: NodeId, wire: Wire<P>) -> bool;

    /// Whether `id` is currently reachable according to the fabric's
    /// address book — the answer to a protocol reachability probe.
    fn contains(&mut self, id: NodeId) -> bool;
}

/// The in-process fabric: sends become mailbox messages through the
/// shared [`Registry`].
pub struct RegistryFabric<P> {
    id: NodeId,
    registry: Arc<Registry<P>>,
}

impl<P> RegistryFabric<P> {
    /// A fabric view for node `id` over the shared registry.
    pub fn new(id: NodeId, registry: Arc<Registry<P>>) -> Self {
        Self { id, registry }
    }
}

impl<P: Clone + Send> NodeFabric<P> for RegistryFabric<P> {
    fn send(&mut self, to: NodeId, wire: Wire<P>) -> bool {
        self.registry.send(
            to,
            Message::Protocol {
                from: self.id,
                wire,
            },
        )
    }

    fn contains(&mut self, id: NodeId) -> bool {
        self.registry.contains(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn registry_fabric_wraps_sends_with_the_sender_id() {
        let registry: Arc<Registry<f64>> = Registry::new();
        let (tx, rx) = unbounded();
        registry.register(NodeId::new(2), tx);
        let mut fabric = RegistryFabric::new(NodeId::new(1), Arc::clone(&registry));
        assert!(fabric.contains(NodeId::new(2)));
        assert!(!fabric.contains(NodeId::new(9)));
        assert!(fabric.send(NodeId::new(2), Wire::Heartbeat));
        match rx.recv().unwrap() {
            Message::Protocol { from, wire } => {
                assert_eq!(from, NodeId::new(1));
                assert_eq!(wire, Wire::Heartbeat);
            }
            other => panic!("expected a protocol message, got {}", other.kind()),
        }
        assert!(!fabric.send(NodeId::new(9), Wire::Heartbeat));
    }
}
