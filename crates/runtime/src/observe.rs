//! Observation plane: a shared board nodes report to, so the harness can
//! measure homogeneity and survival without perturbing the protocol.
//!
//! Aggregation produces the unified
//! [`polystyrene_protocol::observe::RoundObservation`] record — the same
//! type every other execution substrate reports in, so experiment
//! harnesses read one observation pipeline regardless of what carries
//! the messages.

use parking_lot::RwLock;
use polystyrene::prelude::{DataPoint, PointId};
use polystyrene_membership::NodeId;
use polystyrene_protocol::observe::{reference_homogeneity, RoundObservation, TrafficStats};
use polystyrene_space::MetricSpace;
use std::collections::HashMap;
use std::sync::Arc;

/// What each node publishes at every tick.
#[derive(Clone, Debug)]
pub struct NodeReport<P> {
    /// Published position.
    pub pos: P,
    /// Ids of hosted guests.
    pub guest_ids: Vec<PointId>,
    /// Ids of ghost replicas stored here (survival accounting: a point
    /// whose primary holder is mid-migration still exists as a replica).
    pub ghost_ids: Vec<PointId>,
    /// Ids of migration-handout points parked here awaiting the
    /// initiator's ack. On a lossy fabric a point can exist *only* in
    /// this set (the carrying reply dropped, the next backup push already
    /// rewrote the ghosts without it) — it is stored on this node and
    /// must count as held, exactly as the netsim substrate counts it.
    pub parked_ids: Vec<PointId>,
    /// Total stored points (guests + ghosts).
    pub stored_points: usize,
    /// Ticks executed so far.
    pub ticks: u64,
    /// Cumulative wire cost this node has sent, in the paper's units.
    pub cost_units: u64,
    /// Cumulative queries issued through this node as a gateway.
    pub traffic_offered: u64,
    /// Cumulative queries resolved back at this gateway.
    pub traffic_delivered: u64,
    /// Cumulative queries this gateway wrote off after the query
    /// timeout.
    pub traffic_dropped: u64,
    /// Most recent resolved-query `(hops, latency_ticks)` samples, a
    /// bounded window for tail-latency estimation.
    pub traffic_samples: Vec<(u32, u64)>,
}

/// The shared board.
pub struct ObservationBoard<P> {
    inner: RwLock<HashMap<NodeId, NodeReport<P>>>,
}

impl<P> Default for ObservationBoard<P> {
    fn default() -> Self {
        Self {
            inner: RwLock::new(HashMap::new()),
        }
    }
}

impl<P: Clone> ObservationBoard<P> {
    /// An empty board behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publishes (or refreshes) a node's report.
    pub fn publish(&self, id: NodeId, report: NodeReport<P>) {
        self.inner.write().insert(id, report);
    }

    /// Removes a node's report (crash or shutdown).
    pub fn remove(&self, id: NodeId) {
        self.inner.write().remove(&id);
    }

    /// Snapshot of all reports.
    pub fn snapshot(&self) -> HashMap<NodeId, NodeReport<P>> {
        self.inner.read().clone()
    }
}

/// Computes the unified [`RoundObservation`] over a snapshot, against
/// the original target shape; `area` is the data-space surface the
/// reference homogeneity is computed from. The `round` field is left at
/// zero — the experiment driver stamps it, since only the driver knows
/// which scenario round a wall-clock snapshot corresponds to.
pub fn observe<S: MetricSpace>(
    space: &S,
    original_points: &[DataPoint<S::Point>],
    snapshot: &HashMap<NodeId, NodeReport<S::Point>>,
    area: f64,
) -> RoundObservation {
    let alive = snapshot.len();
    let mut parked_points = 0usize;
    let mut holder_positions: HashMap<PointId, Vec<&S::Point>> = HashMap::new();
    for report in snapshot.values() {
        // Parked handover points are physically stored on the parking
        // node until the initiator takes custody: held here.
        parked_points += report.parked_ids.len();
        for pid in report.guest_ids.iter().chain(&report.parked_ids) {
            holder_positions.entry(*pid).or_default().push(&report.pos);
        }
    }
    let mut ghost_ids: std::collections::HashSet<PointId> = std::collections::HashSet::new();
    for report in snapshot.values() {
        ghost_ids.extend(report.ghost_ids.iter().copied());
    }
    let mut homogeneity_acc = 0.0;
    let mut surviving = 0usize;
    for point in original_points {
        if ghost_ids.contains(&point.id) && !holder_positions.contains_key(&point.id) {
            surviving += 1;
        }
        let nearest = match holder_positions.get(&point.id) {
            Some(holders) => {
                surviving += 1;
                holders
                    .iter()
                    .map(|pos| space.distance(&point.pos, pos))
                    .fold(f64::INFINITY, f64::min)
            }
            None => snapshot
                .values()
                .map(|r| space.distance(&point.pos, &r.pos))
                .fold(f64::INFINITY, f64::min),
        };
        if nearest.is_finite() {
            homogeneity_acc += nearest;
        }
    }
    let homogeneity = if original_points.is_empty() || alive == 0 {
        f64::INFINITY
    } else {
        homogeneity_acc / original_points.len() as f64
    };
    // Cumulative gateway counters, like `cost_units`: a wall-clock
    // snapshot has no round boundary to reset at, so the lab's
    // live-substrate adapter differences consecutive snapshots. The
    // latency percentiles come from the nodes' bounded recent-sample
    // windows — an estimate over the trailing window, not the round.
    let mut traffic_samples: Vec<(u32, u64)> = Vec::new();
    let (mut offered, mut delivered, mut dropped) = (0u64, 0u64, 0u64);
    for report in snapshot.values() {
        offered += report.traffic_offered;
        delivered += report.traffic_delivered;
        dropped += report.traffic_dropped;
        traffic_samples.extend_from_slice(&report.traffic_samples);
    }
    let traffic = TrafficStats::from_samples(offered, delivered, dropped, &mut traffic_samples);
    RoundObservation {
        round: 0,
        alive_nodes: alive,
        homogeneity,
        reference_homogeneity: reference_homogeneity(area, alive),
        surviving_points: if original_points.is_empty() {
            1.0
        } else {
            surviving as f64 / original_points.len() as f64
        },
        points_per_node: if alive == 0 {
            0.0
        } else {
            snapshot.values().map(|r| r.stored_points).sum::<usize>() as f64 / alive as f64
        },
        parked_points,
        // Cumulative units per alive node, not this-round units: node
        // threads report running totals (a wall-clock snapshot has no
        // round boundary to reset at). The lab's live-substrate adapter
        // differences consecutive snapshots to recover per-round cost.
        cost_units: if alive == 0 {
            0.0
        } else {
            snapshot.values().map(|r| r.cost_units).sum::<u64>() as f64 / alive as f64
        },
        ticks: snapshot.values().map(|r| r.ticks).min().unwrap_or(0),
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polystyrene_space::prelude::*;

    fn report(pos: [f64; 2], ids: &[u64], stored: usize) -> NodeReport<[f64; 2]> {
        NodeReport {
            pos,
            guest_ids: ids.iter().map(|&i| PointId::new(i)).collect(),
            ghost_ids: Vec::new(),
            parked_ids: Vec::new(),
            stored_points: stored,
            ticks: 5,
            cost_units: 0,
            traffic_offered: 0,
            traffic_delivered: 0,
            traffic_dropped: 0,
            traffic_samples: Vec::new(),
        }
    }

    fn originals(coords: &[[f64; 2]]) -> Vec<DataPoint<[f64; 2]>> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &c)| DataPoint::new(PointId::new(i as u64), c))
            .collect()
    }

    #[test]
    fn board_publish_remove_snapshot() {
        let board: Arc<ObservationBoard<[f64; 2]>> = ObservationBoard::new();
        board.publish(NodeId::new(1), report([0.0, 0.0], &[0], 1));
        assert_eq!(board.snapshot().len(), 1);
        board.remove(NodeId::new(1));
        assert!(board.snapshot().is_empty());
    }

    #[test]
    fn perfect_coverage_gives_zero_homogeneity() {
        let pts = originals(&[[0.0, 0.0], [1.0, 0.0]]);
        let mut snap = HashMap::new();
        snap.insert(NodeId::new(0), report([0.0, 0.0], &[0], 1));
        snap.insert(NodeId::new(1), report([1.0, 0.0], &[1], 1));
        let obs = observe(&Euclidean2, &pts, &snap, 4.0);
        assert_eq!(obs.alive_nodes, 2);
        assert!(obs.homogeneity.abs() < 1e-12);
        assert_eq!(obs.surviving_points, 1.0);
        assert_eq!(obs.points_per_node, 1.0);
        assert_eq!(obs.ticks, 5);
        assert_eq!(obs.parked_points, 0);
        assert_eq!(obs.reference_homogeneity, 0.5 * (4.0f64 / 2.0).sqrt());
    }

    #[test]
    fn lost_point_measured_against_nearest_node() {
        let pts = originals(&[[0.0, 0.0], [10.0, 0.0]]);
        let mut snap = HashMap::new();
        // Only point 0 has a holder; point 1 is lost.
        snap.insert(NodeId::new(0), report([0.0, 0.0], &[0], 1));
        snap.insert(NodeId::new(1), report([4.0, 0.0], &[], 0));
        let obs = observe(&Euclidean2, &pts, &snap, 4.0);
        assert_eq!(obs.surviving_points, 0.5);
        // point 0 at distance 0; point 1 at distance 6 from the nearest
        // node (4,0) → mean 3.
        assert!((obs.homogeneity - 3.0).abs() < 1e-12);
    }

    #[test]
    fn parked_points_count_as_held() {
        let pts = originals(&[[0.0, 0.0], [6.0, 0.0]]);
        let mut snap = HashMap::new();
        snap.insert(NodeId::new(0), report([0.0, 0.0], &[0], 1));
        // Point 1 exists only as a parked handout on the node at (5,0).
        let mut parked = report([5.0, 0.0], &[], 0);
        parked.parked_ids = vec![PointId::new(1)];
        snap.insert(NodeId::new(1), parked);
        let obs = observe(&Euclidean2, &pts, &snap, 4.0);
        assert_eq!(obs.surviving_points, 1.0, "mid-handover is not lost");
        assert_eq!(obs.parked_points, 1);
        // Point 1 measured against its parking node, distance 1 → mean 0.5.
        assert!((obs.homogeneity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_counters_aggregate_across_reports() {
        let pts = originals(&[[0.0, 0.0], [1.0, 0.0]]);
        let mut snap = HashMap::new();
        let mut a = report([0.0, 0.0], &[0], 1);
        a.traffic_offered = 10;
        a.traffic_delivered = 8;
        a.traffic_dropped = 2;
        a.traffic_samples = vec![(3, 2), (5, 6)];
        let mut b = report([1.0, 0.0], &[1], 1);
        b.traffic_offered = 4;
        b.traffic_delivered = 4;
        b.traffic_samples = vec![(1, 1)];
        snap.insert(NodeId::new(0), a);
        snap.insert(NodeId::new(1), b);
        let obs = observe(&Euclidean2, &pts, &snap, 4.0);
        assert_eq!(obs.traffic.offered, 14);
        assert_eq!(obs.traffic.delivered, 12);
        assert_eq!(obs.traffic.dropped, 2);
        assert!((obs.traffic.mean_hops - 3.0).abs() < 1e-12);
        assert_eq!(obs.traffic.latency_p50, 2.0);
        assert_eq!(obs.traffic.latency_p99, 6.0);
    }

    #[test]
    fn empty_cluster_observation() {
        let pts = originals(&[[0.0, 0.0]]);
        let snap = HashMap::new();
        let obs = observe(&Euclidean2, &pts, &snap, 4.0);
        assert_eq!(obs.alive_nodes, 0);
        assert!(obs.homogeneity.is_infinite());
    }
}
