//! The live clusters' shared traffic-plane gateway: batched query
//! injection with bounded-ingress backpressure.
//!
//! Both wall-clock deployments (the in-process [`crate::Cluster`] and
//! the TCP one) inject application queries the same way: draw a
//! uniformly random alive gateway per key, group the keys that drew the
//! same gateway into one self-addressed [`Wire::QueryBatch`], and admit
//! the batch only if the gateway's ingress gauge has room. The gauge
//! counts queries accepted into the gateway's mailbox but not yet
//! handled by its node thread — the node decrements it when the
//! injection is drained — so a gateway that falls behind pushes back at
//! the *offer* boundary instead of letting its mailbox grow without
//! bound. A refused batch is *shed*: counted here, never entering the
//! overlay, and reported separately from queries that expired in
//! flight.

use polystyrene_membership::NodeId;
use polystyrene_protocol::{QueryItem, Wire, TRAFFIC_SEED_TAG};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Queries a gateway may hold in its admission queue (accepted but not
/// yet handled) before further offers to it are shed. Sized to a few
/// rounds of healthy per-gateway load: far above what a keeping-up node
/// ever accumulates, small enough that an overloaded node sheds within
/// one offer instead of banking minutes of stale queries.
pub const GATEWAY_INGRESS_BOUND: usize = 256;

/// The offer-side state of a live cluster's traffic plane: the
/// dedicated gateway-draw entropy stream (`seed ^ TRAFFIC_SEED_TAG`,
/// the tag every substrate shares), the qid counter, the cumulative
/// shed count, and the reusable grouping scratch.
pub struct GatewayTraffic {
    rng: StdRng,
    next_qid: u64,
    shed: u64,
    /// `(gateway, qid, key index)` scratch, reused across offers;
    /// sorting it groups co-destined queries while the qid component
    /// keeps each gateway's run in issue order.
    batch: Vec<(NodeId, u64, usize)>,
}

impl GatewayTraffic {
    /// Fresh state off the cluster seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ TRAFFIC_SEED_TAG),
            next_qid: 0,
            shed: 0,
            batch: Vec::new(),
        }
    }

    /// Queries shed at gateway ingress so far (cumulative).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// One offer: draws a gateway per key (in key order, so the request
    /// sequence is a pure function of the seed stream), groups
    /// co-destined queries into per-gateway batches, and hands each
    /// admitted batch to `deliver` as one self-addressed
    /// [`Wire::QueryBatch`]. A batch whose gateway has no gauge (it
    /// raced with a kill) or whose gauge cannot take the whole batch is
    /// shed instead — all-or-nothing per batch, so a burst to a slow
    /// gateway never half-lands.
    pub fn offer<P: Clone>(
        &mut self,
        keys: &[P],
        ttl: u32,
        alive: &[NodeId],
        gauge_of: impl Fn(NodeId) -> Option<Arc<AtomicUsize>>,
        mut deliver: impl FnMut(NodeId, Wire<P>),
    ) {
        if alive.is_empty() || keys.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        for idx in 0..keys.len() {
            let gateway = alive[self.rng.random_range(0..alive.len())];
            self.next_qid += 1;
            batch.push((gateway, self.next_qid, idx));
        }
        batch.sort_unstable();
        let mut at = 0;
        while at < batch.len() {
            let gateway = batch[at].0;
            let mut end = at;
            while end < batch.len() && batch[end].0 == gateway {
                end += 1;
            }
            let len = end - at;
            // Load-then-add is racy only against the node's own
            // decrements, which can only make more room; the single
            // offer path is serialized by the caller's lock, so the
            // bound cannot be oversubscribed.
            let admitted = match gauge_of(gateway) {
                Some(gauge) if gauge.load(Ordering::Relaxed) + len <= GATEWAY_INGRESS_BOUND => {
                    gauge.fetch_add(len, Ordering::Relaxed);
                    true
                }
                _ => false,
            };
            if admitted {
                let queries: Vec<QueryItem<P>> = batch[at..end]
                    .iter()
                    .map(|&(_, qid, idx)| QueryItem {
                        qid,
                        origin: gateway,
                        key: keys[idx].clone(),
                        ttl,
                        hops: 0,
                    })
                    .collect();
                deliver(gateway, Wire::QueryBatch { queries });
            } else {
                self.shed += len as u64;
            }
            at = end;
        }
        self.batch = batch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn gauges(ids: &[u64]) -> HashMap<NodeId, Arc<AtomicUsize>> {
        ids.iter()
            .map(|&i| (NodeId::new(i), Arc::new(AtomicUsize::new(0))))
            .collect()
    }

    #[test]
    fn offers_group_by_gateway_and_charge_the_gauge() {
        let gauges = gauges(&[0, 1, 2]);
        let alive: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let mut traffic = GatewayTraffic::new(7);
        let keys: Vec<[f64; 2]> = (0..40).map(|i| [f64::from(i), 0.0]).collect();
        let mut delivered: Vec<(NodeId, usize)> = Vec::new();
        traffic.offer(
            &keys,
            8,
            &alive,
            |id| gauges.get(&id).cloned(),
            |to, wire| match wire {
                Wire::QueryBatch { queries } => {
                    assert!(queries.iter().all(|q| q.origin == to && q.hops == 0));
                    // Within a batch, qids ascend: issue order preserved.
                    assert!(queries.windows(2).all(|w| w[0].qid < w[1].qid));
                    delivered.push((to, queries.len()));
                }
                other => panic!("expected a query batch, got {}", other.kind()),
            },
        );
        assert_eq!(traffic.shed(), 0);
        let total: usize = delivered.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 40, "every key must land in exactly one batch");
        assert!(
            delivered.len() <= 3,
            "co-destined queries must share an envelope"
        );
        for (to, n) in delivered {
            assert!(gauges[&to].load(Ordering::Relaxed) >= n);
        }
    }

    #[test]
    fn full_gauges_shed_whole_batches() {
        let gauges = gauges(&[0]);
        gauges[&NodeId::new(0)].store(GATEWAY_INGRESS_BOUND, Ordering::Relaxed);
        let alive = vec![NodeId::new(0)];
        let mut traffic = GatewayTraffic::new(1);
        let keys = vec![[0.0, 0.0]; 5];
        let mut sent = 0;
        traffic.offer(
            &keys,
            8,
            &alive,
            |id| gauges.get(&id).cloned(),
            |_, _| sent += 1,
        );
        assert_eq!(sent, 0, "a full gateway admits nothing");
        assert_eq!(traffic.shed(), 5);
        // Draining the gauge reopens admission.
        gauges[&NodeId::new(0)].store(0, Ordering::Relaxed);
        traffic.offer(
            &keys,
            8,
            &alive,
            |id| gauges.get(&id).cloned(),
            |_, _| sent += 1,
        );
        assert_eq!(sent, 1);
        assert_eq!(traffic.shed(), 5);
    }

    #[test]
    fn gauge_less_gateways_shed_instead_of_sending() {
        let alive = vec![NodeId::new(9)];
        let mut traffic = GatewayTraffic::new(1);
        let keys = vec![[0.0, 0.0]; 3];
        traffic.offer(
            &keys,
            8,
            &alive,
            |_| None,
            |_: NodeId, _: Wire<[f64; 2]>| panic!("nothing to deliver to"),
        );
        assert_eq!(traffic.shed(), 3);
    }
}
