//! Threaded message-passing deployment of the Polystyrene stack.
//!
//! The paper's system model is "a set of message-passing nodes that
//! communicate over reliable channels (e.g. TCP)" with "a (possibly
//! imperfect) failure detector" implemented by "a reactive ping mechanism,
//! or heartbeats" (Sec. III-A). The simulator abstracts all of that into
//! synchronous rounds; this crate drives the *same* sans-IO state machine
//! (`polystyrene_protocol::ProtocolNode` — one implementation of RPS,
//! T-Man and the Polystyrene pipeline for both substrates) asynchronously:
//!
//! * one OS thread per node, with a crossbeam channel as its mailbox
//!   (reliable, in-order — the TCP stand-in);
//! * a wall-clock tick driving gossip initiation, so rounds are only
//!   loosely synchronized across nodes;
//! * a heartbeat failure detector along the backup relationships (origins
//!   heartbeat their backups and vice versa), with a configurable timeout;
//! * crash injection that kills a node mid-flight, losing whatever was in
//!   its mailbox — exactly the crash-stop model.
//!
//! # Example
//!
//! ```
//! use polystyrene_runtime::{Cluster, RuntimeConfig};
//! use polystyrene_space::prelude::*;
//!
//! let mut config = RuntimeConfig::default();
//! config.tick = std::time::Duration::from_millis(4);
//! let shape = shapes::torus_grid(4, 4, 1.0);
//! let cluster = Cluster::spawn(Torus2::new(4.0, 4.0), shape, config);
//! cluster.run_for(std::time::Duration::from_millis(80));
//! let m = cluster.observe();
//! assert_eq!(m.alive_nodes, 16);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod fabric;
pub mod harness;
pub mod message;
pub mod node;
pub mod observe;
pub mod registry;
pub mod traffic;

pub use cluster::Cluster;
pub use config::RuntimeConfig;
pub use fabric::{NodeFabric, RegistryFabric};
pub use message::Message;
pub use polystyrene_protocol::observe::RoundObservation;
pub use registry::Registry;
pub use traffic::{GatewayTraffic, GATEWAY_INGRESS_BOUND};
