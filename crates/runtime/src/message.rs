//! Wire messages of the threaded deployment.
//!
//! Channels are reliable and in-order (the TCP stand-in of the paper's
//! system model); a crashed node's mailbox is dropped, losing whatever was
//! in flight — crash-stop semantics.

use polystyrene::prelude::DataPoint;
use polystyrene_membership::{Descriptor, NodeId};

/// Everything that can cross a node's mailbox.
#[derive(Clone, Debug)]
pub enum Message<P> {
    /// Cyclon shuffle request (peer-sampling layer).
    RpsRequest {
        /// Initiator.
        from: NodeId,
        /// Shuffled-out descriptors.
        descriptors: Vec<Descriptor<P>>,
    },
    /// Cyclon shuffle reply.
    RpsReply {
        /// Responder.
        from: NodeId,
        /// Descriptors the initiator originally sent (for slot reuse).
        sent: Vec<Descriptor<P>>,
        /// Responder's shuffled-out descriptors.
        descriptors: Vec<Descriptor<P>>,
    },
    /// T-Man view exchange request.
    TManRequest {
        /// Initiator.
        from: NodeId,
        /// Initiator's current position (for the ranked reply).
        from_pos: P,
        /// The initiator's `m` best descriptors for the recipient.
        descriptors: Vec<Descriptor<P>>,
    },
    /// T-Man view exchange reply.
    TManReply {
        /// Responder.
        from: NodeId,
        /// The responder's `m` best descriptors for the initiator.
        descriptors: Vec<Descriptor<P>>,
    },
    /// Migration pull-push request (paper Algorithm 3): the initiator
    /// ships its whole guest set; the responder runs `SPLIT` and returns
    /// the initiator's share.
    MigrationRequest {
        /// Initiator.
        from: NodeId,
        /// Initiator's current position (`pos_p` of the split).
        from_pos: P,
        /// Initiator's guests (the *pull* leg).
        guests: Vec<DataPoint<P>>,
    },
    /// Migration reply carrying the initiator's share (the *push* leg),
    /// or — when `busy` — the untouched original guests, because the
    /// responder was itself mid-exchange ("q should not be interacting
    /// with anyone else than p while the exchange occurs", Sec. III-F).
    MigrationReply {
        /// Responder.
        from: NodeId,
        /// Points now owned by the initiator.
        points: Vec<DataPoint<P>>,
        /// Whether this is a busy-bounce rather than a real split.
        busy: bool,
    },
    /// Replica push (paper Algorithm 1): `ghosts[from] ← points`.
    BackupPush {
        /// Origin (primary holder).
        from: NodeId,
        /// Full replica to store.
        points: Vec<DataPoint<P>>,
    },
    /// Liveness beacon along backup relationships.
    Heartbeat {
        /// Sender.
        from: NodeId,
    },
    /// Orderly termination (used by the harness, not the protocol).
    Shutdown,
}

impl<P> Message<P> {
    /// Short tag for logging and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::RpsRequest { .. } => "rps_request",
            Message::RpsReply { .. } => "rps_reply",
            Message::TManRequest { .. } => "tman_request",
            Message::TManReply { .. } => "tman_reply",
            Message::MigrationRequest { .. } => "migration_request",
            Message::MigrationReply { .. } => "migration_reply",
            Message::BackupPush { .. } => "backup_push",
            Message::Heartbeat { .. } => "heartbeat",
            Message::Shutdown => "shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let msgs: Vec<Message<f64>> = vec![
            Message::Heartbeat { from: NodeId::new(1) },
            Message::Shutdown,
            Message::MigrationReply {
                from: NodeId::new(1),
                points: vec![],
                busy: false,
            },
        ];
        let kinds: Vec<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds, vec!["heartbeat", "shutdown", "migration_reply"]);
    }
}
