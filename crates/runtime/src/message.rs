//! Mailbox messages of the threaded deployment.
//!
//! The protocol payloads themselves are the transport-agnostic
//! [`Wire`] values of `polystyrene-protocol`; this module merely wraps
//! them with a sender id for the mailbox, plus the harness-level
//! shutdown signal. Channels are reliable and in-order (the TCP stand-in
//! of the paper's system model); a crashed node's mailbox is dropped,
//! losing whatever was in flight — crash-stop semantics.

use polystyrene_membership::NodeId;
use polystyrene_protocol::Wire;

/// Everything that can cross a node's mailbox.
#[derive(Clone, Debug)]
pub enum Message<P> {
    /// A protocol payload from another node.
    Protocol {
        /// The sender.
        from: NodeId,
        /// The sans-IO payload.
        wire: Wire<P>,
    },
    /// Orderly termination (used by the harness, not the protocol).
    Shutdown,
}

impl<P> Message<P> {
    /// Short tag for logging and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Protocol { wire, .. } => wire.kind(),
            Message::Shutdown => "shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let msgs: Vec<Message<f64>> = vec![
            Message::Protocol {
                from: NodeId::new(1),
                wire: Wire::Heartbeat,
            },
            Message::Shutdown,
            Message::Protocol {
                from: NodeId::new(1),
                wire: Wire::MigrationReply {
                    xid: 1,
                    points: vec![],
                    busy: false,
                    pulled: 0,
                    pushed: 0,
                },
            },
        ];
        let kinds: Vec<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds, vec!["heartbeat", "shutdown", "migration_reply"]);
    }
}
