//! Scenario execution on a live threaded cluster.
//!
//! The scenario language lives in `polystyrene-protocol` and is shared
//! with the cycle simulator; this module plugs any [`ClusterHarness`] —
//! the in-process [`crate::Cluster`] or the TCP deployment — in as a
//! [`ScenarioSubstrate`], with one cluster *round* defined as every alive
//! node completing one more local tick. The same [`Scenario`] value —
//! including continuous [`polystyrene_protocol::ScenarioEvent::Churn`]
//! windows — therefore runs unchanged on every execution substrate, and
//! failure injection goes through the identical shared code path.
//!
//! Wall-clock asynchrony means cluster runs are *not* bit-reproducible
//! (unlike the engine): the returned [`ClusterObservation`]s are one
//! snapshot per round, for trend assertions rather than exact replay.

use crate::harness::ClusterHarness;
use crate::observe::ClusterObservation;
use polystyrene_membership::NodeId;
use polystyrene_protocol::scenario::{drive_scenario, select_victims, Scenario, ScenarioSubstrate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Any [`ClusterHarness`] — the in-process [`crate::Cluster`] or the TCP
/// deployment — viewed as a scenario substrate.
struct ClusterSubstrate<'a, P, H: ClusterHarness<P>> {
    cluster: &'a H,
    /// Entropy for the random-fraction events (node threads have their
    /// own RNGs; this one only picks victims).
    rng: StdRng,
    /// Ticks every alive node must have completed for the current round
    /// to count as finished.
    target_ticks: u64,
    round_timeout: Duration,
    observations: Vec<ClusterObservation>,
    _point: std::marker::PhantomData<P>,
}

impl<P: Clone, H: ClusterHarness<P>> ScenarioSubstrate<P> for ClusterSubstrate<'_, P, H> {
    fn fail_region(&mut self, predicate: &(dyn Fn(&P) -> bool + Send + Sync)) -> Vec<NodeId> {
        self.cluster.kill_region(predicate)
    }

    fn fail_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        // Sorted first: alive_ids comes out of a HashMap, and the shared
        // selection must shuffle a well-defined base order.
        let mut alive = self.cluster.alive_ids();
        alive.sort();
        let mut victims = select_victims(alive, fraction, &mut self.rng);
        victims.retain(|&id| self.cluster.kill(id));
        victims
    }

    fn fail_nodes(&mut self, ids: &[NodeId]) -> Vec<NodeId> {
        ids.iter()
            .copied()
            .filter(|&id| self.cluster.kill(id))
            .collect()
    }

    fn inject(&mut self, positions: &[P]) -> Vec<NodeId> {
        positions
            .iter()
            .map(|p| self.cluster.inject(p.clone()))
            .collect()
    }

    fn advance_round(&mut self) {
        self.target_ticks += 1;
        self.cluster
            .await_ticks(self.target_ticks, self.round_timeout);
        self.observations.push(self.cluster.observe());
    }
}

/// Drives `cluster` through `scenario` — the runtime twin of the
/// simulator's `run_scenario` — returning one [`ClusterObservation`] per
/// round. Accepts any [`ClusterHarness`], so the same call drives the
/// in-process [`crate::Cluster`] and the TCP deployment.
///
/// `round_timeout` bounds how long one round may take (a safety valve:
/// freshly injected nodes start at tick zero and need wall-clock time to
/// catch up to the cluster's round count); `seed` drives victim selection
/// for the random-failure and churn events.
pub fn run_cluster_scenario<P: Clone, H: ClusterHarness<P>>(
    cluster: &H,
    scenario: &Scenario<P>,
    round_timeout: Duration,
    seed: u64,
) -> Vec<ClusterObservation> {
    let mut substrate = ClusterSubstrate {
        cluster,
        rng: StdRng::seed_from_u64(seed),
        target_ticks: 0,
        round_timeout,
        observations: Vec::with_capacity(scenario.total_rounds() as usize),
        _point: std::marker::PhantomData,
    };
    drive_scenario(&mut substrate, scenario);
    substrate.observations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::config::RuntimeConfig;
    use polystyrene::prelude::PolystyreneConfig;
    use polystyrene_protocol::ScenarioEvent;
    use polystyrene_space::prelude::*;
    use polystyrene_space::shapes;

    fn fast_config() -> RuntimeConfig {
        let mut c = RuntimeConfig::default();
        c.tick = Duration::from_millis(2);
        c.poly = PolystyreneConfig::builder().replication(3).build();
        c
    }

    #[test]
    fn scripted_kill_and_inject_apply_on_the_cluster() {
        let cluster = Cluster::spawn(
            Torus2::new(4.0, 4.0),
            shapes::torus_grid(4, 4, 1.0),
            fast_config(),
        );
        let scenario: Scenario<[f64; 2]> = Scenario::new(8)
            .at(
                2,
                ScenarioEvent::FailNodes(vec![NodeId::new(0), NodeId::new(1)]),
            )
            .at(
                5,
                ScenarioEvent::Inject(vec![[0.5, 0.5], [1.5, 0.5], [2.5, 0.5]]),
            );
        let obs = run_cluster_scenario(&cluster, &scenario, Duration::from_secs(5), 1);
        assert_eq!(obs.len(), 8);
        assert_eq!(obs[2].alive_nodes, 14);
        assert_eq!(obs.last().unwrap().alive_nodes, 17);
        cluster.shutdown();
    }

    #[test]
    fn churn_window_shrinks_the_cluster() {
        let cluster = Cluster::spawn(
            Torus2::new(4.0, 4.0),
            shapes::torus_grid(4, 4, 1.0),
            fast_config(),
        );
        let scenario: Scenario<[f64; 2]> = Scenario::new(6).at(
            1,
            ScenarioEvent::Churn {
                rate: 0.25,
                rounds: 2,
            },
        );
        let obs = run_cluster_scenario(&cluster, &scenario, Duration::from_secs(5), 2);
        assert_eq!(obs[0].alive_nodes, 16);
        assert_eq!(obs[1].alive_nodes, 12); // 16 - 25%
        assert_eq!(obs[2].alive_nodes, 9); // 12 - 25%
        assert_eq!(obs.last().unwrap().alive_nodes, 9);
        cluster.shutdown();
    }
}
