//! Runtime deployment configuration.

use polystyrene::prelude::PolystyreneConfig;
use polystyrene_protocol::{CostModel, LinkProfile, ProtocolConfig};
use polystyrene_topology::TManConfig;
use std::time::Duration;

/// Parameters of a threaded Polystyrene deployment.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Protocol tick: each node initiates one gossip round per tick.
    ///
    /// This is the idle gap *between* rounds (fixed-delay pacing), not a
    /// guaranteed rate: a node whose message handling outruns the period
    /// slows its protocol clock accordingly. Since every tick-denominated
    /// timeout (heartbeats, migration) stretches with it, the protocol
    /// degrades gracefully under load instead of timing out exchanges
    /// that are merely slow.
    pub tick: Duration,
    /// Ticks without a heartbeat after which a monitored peer is suspected
    /// — the detection lag of the paper's "possibly imperfect" detector.
    pub heartbeat_timeout_ticks: u32,
    /// T-Man parameters.
    pub tman: TManConfig,
    /// Polystyrene parameters.
    pub poly: PolystyreneConfig,
    /// RPS view capacity.
    pub rps_view_cap: usize,
    /// Descriptors per RPS shuffle.
    pub rps_shuffle_len: usize,
    /// Random contacts seeded into each node's layers at spawn.
    pub bootstrap_contacts: usize,
    /// Ticks an initiated migration may stay unanswered before the
    /// initiator gives up and unlocks.
    pub migration_timeout_ticks: u32,
    /// Link-fault injection for the in-process fabric. The runtime honors
    /// the loss probability (messages silently vanish in transit, via the
    /// shared [`polystyrene_protocol::NetworkModel`] hook in the
    /// registry); latency and jitter need a timer fabric and are the
    /// discrete-event simulator's domain — they are ignored here.
    pub link: LinkProfile,
    /// Unit prices charged per outbound wire message (paper Sec. IV-A),
    /// tallied by each node thread at its send boundary.
    pub cost: CostModel,
    /// Base RNG seed (each node derives its own from this and its id).
    pub seed: u64,
    /// Surface area of the data space, for the reference homogeneity
    /// reported by the observation plane (3200 for the paper's 80×40
    /// torus).
    pub area: f64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(10),
            heartbeat_timeout_ticks: 4,
            tman: TManConfig {
                view_cap: 30,
                m: 10,
                psi: 5,
            },
            poly: PolystyreneConfig::default(),
            rps_view_cap: 12,
            rps_shuffle_len: 6,
            bootstrap_contacts: 8,
            migration_timeout_ticks: 3,
            link: LinkProfile::ideal(),
            cost: CostModel::default(),
            seed: 1,
            area: 3200.0,
        }
    }
}

impl RuntimeConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on zero timeouts or a zero tick.
    pub fn validate(&self) {
        assert!(!self.tick.is_zero(), "tick must be non-zero");
        assert!(
            self.heartbeat_timeout_ticks > 0,
            "heartbeat timeout must be at least one tick"
        );
        assert!(
            self.migration_timeout_ticks > 0,
            "migration timeout must be at least one tick"
        );
        self.link.validate();
        self.poly.validate();
        self.tman.validate();
    }

    /// The protocol-level slice of this configuration, handed to each
    /// node's sans-IO [`polystyrene_protocol::ProtocolNode`].
    pub fn protocol(&self) -> ProtocolConfig {
        ProtocolConfig {
            tman: self.tman,
            poly: self.poly,
            rps_view_cap: self.rps_view_cap,
            rps_shuffle_len: self.rps_shuffle_len,
            heartbeat_timeout_ticks: self.heartbeat_timeout_ticks,
            migration_timeout_ticks: self.migration_timeout_ticks,
            query_timeout_ticks: ProtocolConfig::default().query_timeout_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        RuntimeConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "tick must be non-zero")]
    fn zero_tick_rejected() {
        let mut c = RuntimeConfig::default();
        c.tick = Duration::ZERO;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "heartbeat timeout")]
    fn zero_heartbeat_rejected() {
        let mut c = RuntimeConfig::default();
        c.heartbeat_timeout_ticks = 0;
        c.validate();
    }
}
