//! Failure detection.
//!
//! The paper's system model assumes "a crash-stop fault model: nodes fail
//! by crashing, and do not recover. We also assume nodes have access to a
//! (possibly imperfect) failure detector" (Sec. III-A). This module
//! provides the abstraction plus three implementations:
//!
//! * [`SharedFailureDetector`] — a perfect detector backed by the ground
//!   truth (what the simulator uses by default, like the paper's `failed`
//!   variable);
//! * [`DelayedFailureDetector`] — reports a crash only `delay` rounds after
//!   it happened, to study detection lag;
//! * [`FlakyFailureDetector`] — additionally raises transient false
//!   suspicions, to study unreliable detection.
//!
//! The runtime crate implements a fourth, heartbeat-based detector on top
//! of real message passing.

use crate::id::NodeId;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The failure-detector interface used by every protocol layer.
///
/// `now` is the current protocol round; detectors that model detection
/// latency use it, perfect detectors ignore it.
pub trait FailureDetector {
    /// Whether `id` is currently suspected to have crashed.
    fn is_failed(&self, id: NodeId, now: u32) -> bool;

    /// Filters the suspected ids out of `ids` (convenience).
    fn failed_among(&self, ids: &[NodeId], now: u32) -> Vec<NodeId> {
        ids.iter()
            .copied()
            .filter(|&id| self.is_failed(id, now))
            .collect()
    }
}

/// Ground-truth failure record shared by all nodes of a simulation: a
/// perfect failure detector.
///
/// Cloning shares the underlying record (it is an `Arc`), so the simulator
/// can hand one handle to every node and update it centrally when it
/// injects crashes.
///
/// # Example
///
/// ```
/// use polystyrene_membership::{FailureDetector, NodeId, SharedFailureDetector};
///
/// let fd = SharedFailureDetector::new();
/// let n1 = NodeId::new(1);
/// assert!(!fd.is_failed(n1, 0));
/// fd.mark_failed(n1, 0);
/// assert!(fd.is_failed(n1, 0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharedFailureDetector {
    inner: Arc<RwLock<HashMap<NodeId, u32>>>,
}

impl SharedFailureDetector {
    /// Creates a detector with no recorded failures.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `id` crashed at round `round`.
    pub fn mark_failed(&self, id: NodeId, round: u32) {
        self.inner.write().entry(id).or_insert(round);
    }

    /// Forgets a failure record (used when recycling ids in long-running
    /// simulations; crash-stop nodes never actually recover).
    pub fn clear(&self, id: NodeId) {
        self.inner.write().remove(&id);
    }

    /// Number of recorded failures.
    pub fn failed_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Snapshot of all failed ids.
    pub fn failed_ids(&self) -> HashSet<NodeId> {
        self.inner.read().keys().copied().collect()
    }

    /// The round at which `id` crashed, if it did.
    pub fn failure_round(&self, id: NodeId) -> Option<u32> {
        self.inner.read().get(&id).copied()
    }

    /// Snapshot of every failure record as `(id, crash round)` pairs.
    ///
    /// Batch drivers use this to build a dense per-phase verdict table
    /// with a single lock acquisition; querying [`Self::failure_round`]
    /// per view entry instead costs one read-lock per membership test —
    /// millions per round at 10k+ nodes.
    pub fn failure_records(&self) -> Vec<(NodeId, u32)> {
        self.inner
            .read()
            .iter()
            .map(|(&id, &at)| (id, at))
            .collect()
    }
}

impl FailureDetector for SharedFailureDetector {
    fn is_failed(&self, id: NodeId, _now: u32) -> bool {
        self.inner.read().contains_key(&id)
    }
}

/// A detector that reports crashes only `delay` rounds after they occurred,
/// modeling heartbeat timeout lag.
#[derive(Clone, Debug)]
pub struct DelayedFailureDetector {
    truth: SharedFailureDetector,
    delay: u32,
}

impl DelayedFailureDetector {
    /// Wraps a ground-truth detector with a fixed detection delay.
    pub fn new(truth: SharedFailureDetector, delay: u32) -> Self {
        Self { truth, delay }
    }

    /// The configured detection delay in rounds.
    pub fn delay(&self) -> u32 {
        self.delay
    }
}

impl FailureDetector for DelayedFailureDetector {
    fn is_failed(&self, id: NodeId, now: u32) -> bool {
        match self.truth.failure_round(id) {
            Some(at) => now >= at.saturating_add(self.delay),
            None => false,
        }
    }
}

/// A detector that, on top of the (delayed) truth, raises *false
/// suspicions* with a fixed per-query probability.
///
/// Suspicions are deterministic per `(id, now)` pair so repeated queries in
/// the same round agree — the detector is inaccurate but not inconsistent.
#[derive(Clone, Debug)]
pub struct FlakyFailureDetector {
    truth: SharedFailureDetector,
    false_positive_rate: f64,
    seed: u64,
}

impl FlakyFailureDetector {
    /// Wraps a ground-truth detector with a false-suspicion rate in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `false_positive_rate` is outside `[0, 1]`.
    pub fn new(truth: SharedFailureDetector, false_positive_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&false_positive_rate),
            "false positive rate must be within [0, 1], got {false_positive_rate}"
        );
        Self {
            truth,
            false_positive_rate,
            seed,
        }
    }
}

impl FailureDetector for FlakyFailureDetector {
    fn is_failed(&self, id: NodeId, now: u32) -> bool {
        if self.truth.is_failed(id, now) {
            return true;
        }
        if self.false_positive_rate == 0.0 {
            return false;
        }
        // Deterministic per (id, round): derive a throwaway RNG.
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.as_u64().wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(u64::from(now).wrapping_mul(0x94D0_49BB_1331_11EB));
        let mut rng = StdRng::seed_from_u64(mix);
        rng.random_bool(self.false_positive_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_detector_records_and_reports() {
        let fd = SharedFailureDetector::new();
        let a = NodeId::new(1);
        assert!(!fd.is_failed(a, 0));
        fd.mark_failed(a, 7);
        assert!(fd.is_failed(a, 0));
        assert_eq!(fd.failure_round(a), Some(7));
        assert_eq!(fd.failed_count(), 1);
        assert!(fd.failed_ids().contains(&a));
        fd.clear(a);
        assert!(!fd.is_failed(a, 99));
    }

    #[test]
    fn first_failure_round_wins() {
        let fd = SharedFailureDetector::new();
        fd.mark_failed(NodeId::new(1), 5);
        fd.mark_failed(NodeId::new(1), 9);
        assert_eq!(fd.failure_round(NodeId::new(1)), Some(5));
    }

    #[test]
    fn clone_shares_state() {
        let fd = SharedFailureDetector::new();
        let fd2 = fd.clone();
        fd.mark_failed(NodeId::new(3), 0);
        assert!(fd2.is_failed(NodeId::new(3), 0));
    }

    #[test]
    fn failed_among_filters() {
        let fd = SharedFailureDetector::new();
        fd.mark_failed(NodeId::new(2), 0);
        let out = fd.failed_among(&[NodeId::new(1), NodeId::new(2), NodeId::new(3)], 0);
        assert_eq!(out, vec![NodeId::new(2)]);
    }

    #[test]
    fn delayed_detector_lags() {
        let truth = SharedFailureDetector::new();
        let fd = DelayedFailureDetector::new(truth.clone(), 3);
        let a = NodeId::new(1);
        truth.mark_failed(a, 10);
        assert!(!fd.is_failed(a, 10));
        assert!(!fd.is_failed(a, 12));
        assert!(fd.is_failed(a, 13));
        assert_eq!(fd.delay(), 3);
    }

    #[test]
    fn delayed_detector_never_suspects_alive() {
        let truth = SharedFailureDetector::new();
        let fd = DelayedFailureDetector::new(truth, 0);
        assert!(!fd.is_failed(NodeId::new(1), 1000));
    }

    #[test]
    fn flaky_detector_is_deterministic_per_round() {
        let truth = SharedFailureDetector::new();
        let fd = FlakyFailureDetector::new(truth, 0.5, 42);
        let a = NodeId::new(17);
        for round in 0..20 {
            assert_eq!(fd.is_failed(a, round), fd.is_failed(a, round));
        }
    }

    #[test]
    fn flaky_detector_rate_zero_is_perfect() {
        let truth = SharedFailureDetector::new();
        let fd = FlakyFailureDetector::new(truth.clone(), 0.0, 1);
        for round in 0..50 {
            assert!(!fd.is_failed(NodeId::new(5), round));
        }
        truth.mark_failed(NodeId::new(5), 3);
        assert!(fd.is_failed(NodeId::new(5), 3));
    }

    #[test]
    fn flaky_detector_actually_suspects_sometimes() {
        let truth = SharedFailureDetector::new();
        let fd = FlakyFailureDetector::new(truth, 0.5, 7);
        let suspected = (0..200)
            .filter(|&r| fd.is_failed(NodeId::new(1), r))
            .count();
        // With p = 0.5 over 200 rounds, hitting 0 or 200 is astronomically
        // unlikely; this catches "always false" and "always true" bugs.
        assert!(suspected > 20 && suspected < 180);
    }

    #[test]
    #[should_panic(expected = "false positive rate")]
    fn flaky_detector_rejects_bad_rate() {
        let _ = FlakyFailureDetector::new(SharedFailureDetector::new(), 1.5, 0);
    }
}
