//! Node descriptors — the records gossip layers exchange.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// A node descriptor: the node's identity, its current position in the
/// data space, and a gossip age.
///
/// This is the wire record of both gossip layers (paper Fig. 2): the RPS
/// shuffles descriptors to randomize its overlay, and T-Man ranks them by
/// distance to build the topology. The paper's cost model charges
/// descriptors at "ID + coordinates = 3 units" for 2-D positions
/// (Sec. IV-A).
///
/// `age` counts gossip rounds since the descriptor was created by its
/// subject; fresher (lower-age) descriptors carry more recent positions,
/// which matters because Polystyrene nodes *move*.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Descriptor<P> {
    /// Identity of the described node.
    pub id: NodeId,
    /// Last known position of the node in the data space.
    pub pos: P,
    /// Gossip age in rounds (0 = freshly minted by the subject itself).
    pub age: u32,
}

impl<P> Descriptor<P> {
    /// Creates a fresh descriptor (age 0).
    pub fn new(id: NodeId, pos: P) -> Self {
        Self { id, pos, age: 0 }
    }

    /// Creates a descriptor with an explicit age.
    pub fn with_age(id: NodeId, pos: P, age: u32) -> Self {
        Self { id, pos, age }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let d = Descriptor::new(NodeId::new(1), [1.0, 2.0]);
        assert_eq!(d.age, 0);
        let d = Descriptor::with_age(NodeId::new(1), [1.0, 2.0], 5);
        assert_eq!(d.age, 5);
    }

    #[test]
    fn generic_over_position_type() {
        let d = Descriptor::new(NodeId::new(9), 0.25f64);
        assert_eq!(d.pos, 0.25);
        let d = Descriptor::new(NodeId::new(9), [0.0f64; 3]);
        assert_eq!(d.pos.len(), 3);
    }
}
