//! Node identifiers.

use serde::{Deserialize, Serialize};

/// A globally unique node identifier.
///
/// In the paper's cost model a node ID is the unit of communication: "We
/// assume a single coordinate uses the same size as a node ID, and take
/// this as our arbitrary communication unit" (Sec. IV-A). The simulator's
/// cost accounting charges 1 unit per `NodeId` on the wire.
///
/// # Example
///
/// ```
/// use polystyrene_membership::NodeId;
///
/// let a = NodeId::new(7);
/// assert_eq!(a.as_u64(), 7);
/// assert_eq!(format!("{a}"), "n7");
/// assert!(a < NodeId::new(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw integer value.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }

    /// The raw value as a usize, convenient for dense array indexing in the
    /// simulator (ids are allocated contiguously there).
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_and_ordering() {
        let id = NodeId::new(42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(NodeId::from(42u64), id);
        assert_eq!(id.index(), 42);
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(NodeId::new(3199).to_string(), "n3199");
    }

    #[test]
    fn usable_in_hash_sets() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", NodeId::new(5)).is_empty());
    }
}
