//! Node identifiers.

use serde::{Deserialize, Serialize};

/// A globally unique node identifier.
///
/// In the paper's cost model a node ID is the unit of communication: "We
/// assume a single coordinate uses the same size as a node ID, and take
/// this as our arbitrary communication unit" (Sec. IV-A). The simulator's
/// cost accounting charges 1 unit per `NodeId` on the wire.
///
/// # Example
///
/// ```
/// use polystyrene_membership::NodeId;
///
/// let a = NodeId::new(7);
/// assert_eq!(a.as_u64(), 7);
/// assert_eq!(format!("{a}"), "n7");
/// assert!(a < NodeId::new(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw integer value.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }

    /// The raw value as a usize, convenient for dense array indexing in the
    /// simulator (ids are allocated contiguously there).
    pub const fn index(&self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// A multiply-rotate hasher for integer keys (FxHash-style).
///
/// `NodeId`-keyed maps sit on gossip hot paths — T-Man's per-exchange
/// view dedup alone hashes every merged descriptor on every exchange of
/// every node — where SipHash's per-insert cost dominates the whole
/// lookup. Ids are not attacker-controlled (they are allocated by the
/// driver), so HashDoS resistance buys nothing here.
///
/// Only the fixed-width integer `write_*` entry points are implemented
/// with mixing; keys that hash arbitrary byte strings should keep the
/// default hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer inputs (rare on these maps): fold the
        // bytes through the same mix.
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// A `HashMap` keyed by [`NodeId`] (or other trusted integers) using
/// [`IdHasher`].
pub type IdHashMap<K, V> = std::collections::HashMap<K, V, std::hash::BuildHasherDefault<IdHasher>>;

/// A `HashSet` over [`NodeId`]-like trusted integers using [`IdHasher`].
pub type IdHashSet<K> = std::collections::HashSet<K, std::hash::BuildHasherDefault<IdHasher>>;

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_and_ordering() {
        let id = NodeId::new(42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(NodeId::from(42u64), id);
        assert_eq!(id.index(), 42);
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(NodeId::new(3199).to_string(), "n3199");
    }

    #[test]
    fn usable_in_hash_sets() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", NodeId::new(5)).is_empty());
    }

    #[test]
    fn id_hash_map_behaves_like_a_map() {
        let mut m: IdHashMap<NodeId, u32> = IdHashMap::default();
        for i in 0..1000u64 {
            m.insert(NodeId::new(i), i as u32);
        }
        m.insert(NodeId::new(7), 99);
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&NodeId::new(7)], 99);
        assert_eq!(m[&NodeId::new(999)], 999);
        assert!(!m.contains_key(&NodeId::new(1000)));
    }

    #[test]
    fn id_hasher_spreads_sequential_ids() {
        use std::hash::{Hash, Hasher};
        // Sequential ids (the simulator's allocation pattern) must not
        // collapse onto a few buckets.
        let mut lows = HashSet::new();
        for i in 0..256u64 {
            let mut h = IdHasher::default();
            NodeId::new(i).hash(&mut h);
            lows.insert(h.finish() & 0xff);
        }
        assert!(lows.len() > 128, "only {} distinct low bytes", lows.len());
    }
}
