//! Bounded, deduplicated gossip views.
//!
//! "In each overlay, nodes maintain a small list of neighbors (its view)"
//! (paper Sec. II-B). Views deduplicate by node id, keep the freshest
//! descriptor on conflicts, and enforce a capacity bound (the paper caps
//! T-Man views at 100 peers, Sec. IV-A).

use crate::descriptor::Descriptor;
use crate::id::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Index-permutation scratch for [`View::sample_into`] — reused across
    /// every sample taken on this thread.
    static SAMPLE_IDX: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// A bounded list of [`Descriptor`]s, unique per [`NodeId`].
///
/// # Example
///
/// ```
/// use polystyrene_membership::{Descriptor, NodeId, View};
///
/// let mut v: View<f64> = View::new(2);
/// v.insert(Descriptor::new(NodeId::new(1), 0.1));
/// v.insert(Descriptor::with_age(NodeId::new(1), 0.9, 3)); // stale duplicate
/// assert_eq!(v.len(), 1);
/// assert_eq!(v.get(NodeId::new(1)).unwrap().pos, 0.1); // freshest kept
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct View<P> {
    entries: Vec<Descriptor<P>>,
    cap: usize,
}

impl<P: Clone> View<P> {
    /// Creates an empty view with the given capacity bound.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero — a zero-capacity view can never hold a
    /// neighbor and would silently break every gossip layer above it.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "view capacity must be at least 1");
        Self {
            entries: Vec::new(),
            cap,
        }
    }

    /// The capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of descriptors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a descriptor, deduplicating by id (the fresher descriptor —
    /// lower `age` — wins). When full and the id is new, the *oldest* entry
    /// is evicted, provided the incoming descriptor is fresher than it.
    ///
    /// Returns `true` if the descriptor was stored.
    pub fn insert(&mut self, d: Descriptor<P>) -> bool {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.id == d.id) {
            if d.age <= existing.age {
                *existing = d;
                return true;
            }
            return false;
        }
        if self.entries.len() < self.cap {
            self.entries.push(d);
            return true;
        }
        // Full: evict the single oldest entry if the newcomer is fresher.
        if let Some((idx, oldest_age)) = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.age))
            .max_by_key(|&(_, age)| age)
        {
            if d.age < oldest_age {
                self.entries[idx] = d;
                return true;
            }
        }
        false
    }

    /// Removes the descriptor for `id`, returning it if present.
    pub fn remove(&mut self, id: NodeId) -> Option<Descriptor<P>> {
        let idx = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Removes every descriptor matching the predicate (e.g. failed nodes).
    pub fn retain(&mut self, mut keep: impl FnMut(&Descriptor<P>) -> bool) {
        self.entries.retain(|e| keep(e));
    }

    /// Whether the view holds a descriptor for `id`.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// The descriptor for `id`, if present.
    pub fn get(&self, id: NodeId) -> Option<&Descriptor<P>> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Iterates over the descriptors in unspecified order.
    pub fn iter(&self) -> std::slice::Iter<'_, Descriptor<P>> {
        self.entries.iter()
    }

    /// The ids of all descriptors.
    pub fn ids(&self) -> Vec<NodeId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Increments the age of every descriptor (one gossip round has passed).
    pub fn increment_ages(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// The entry with the highest age (Cyclon's shuffle-partner choice).
    pub fn oldest(&self) -> Option<&Descriptor<P>> {
        self.entries.iter().max_by_key(|e| e.age)
    }

    /// A uniformly random descriptor.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Descriptor<P>> {
        if self.entries.is_empty() {
            None
        } else {
            let i = rng.random_range(0..self.entries.len());
            Some(&self.entries[i])
        }
    }

    /// Up to `n` distinct descriptors sampled uniformly at random.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Descriptor<P>> {
        let mut out = Vec::new();
        self.sample_into(n, rng, &mut out);
        out
    }

    /// [`View::sample`] appending into a caller-owned buffer: the index
    /// permutation lives in thread-local scratch, so steady-state sampling
    /// does not touch the allocator. The rng draw sequence is identical to
    /// [`View::sample`] (the shuffle depends only on the view length).
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<Descriptor<P>>,
    ) {
        SAMPLE_IDX.with(|cell| {
            let mut idx = cell.borrow_mut();
            idx.clear();
            idx.extend(0..self.entries.len());
            idx.shuffle(rng);
            idx.truncate(n);
            out.extend(idx.iter().map(|&i| self.entries[i].clone()));
        });
    }

    /// The ids of up to `n` distinct uniformly sampled descriptors,
    /// appended into `out` — rng-equivalent to [`View::sample`] without
    /// cloning any descriptor.
    pub fn sample_ids_into<R: Rng + ?Sized>(&self, n: usize, rng: &mut R, out: &mut Vec<NodeId>) {
        SAMPLE_IDX.with(|cell| {
            let mut idx = cell.borrow_mut();
            idx.clear();
            idx.extend(0..self.entries.len());
            idx.shuffle(rng);
            idx.truncate(n);
            out.extend(idx.iter().map(|&i| self.entries[i].id));
        });
    }

    /// Keeps only the `n` best entries according to `score` (lower is
    /// better) — the ranked truncation at the heart of T-Man's view merge.
    pub fn keep_best_by(&mut self, n: usize, mut score: impl FnMut(&Descriptor<P>) -> f64) {
        self.entries.sort_by(|a, b| score(a).total_cmp(&score(b)));
        self.entries.truncate(n);
    }

    /// Drains all entries, leaving the view empty.
    pub fn drain(&mut self) -> Vec<Descriptor<P>> {
        std::mem::take(&mut self.entries)
    }

    /// Direct access to the underlying entries (read-only).
    pub fn as_slice(&self) -> &[Descriptor<P>] {
        &self.entries
    }
}

impl<P: Clone> Extend<Descriptor<P>> for View<P> {
    fn extend<T: IntoIterator<Item = Descriptor<P>>>(&mut self, iter: T) {
        for d in iter {
            self.insert(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(id: u64, pos: f64, age: u32) -> Descriptor<f64> {
        Descriptor::with_age(NodeId::new(id), pos, age)
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_cap_panics() {
        let _: View<f64> = View::new(0);
    }

    #[test]
    fn insert_dedups_keeping_freshest() {
        let mut v = View::new(4);
        assert!(v.insert(d(1, 0.5, 2)));
        assert!(v.insert(d(1, 0.7, 0))); // fresher replaces
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(NodeId::new(1)).unwrap().pos, 0.7);
        assert!(!v.insert(d(1, 0.9, 9))); // staler rejected
        assert_eq!(v.get(NodeId::new(1)).unwrap().pos, 0.7);
    }

    #[test]
    fn full_view_evicts_oldest_for_fresher_newcomer() {
        let mut v = View::new(2);
        v.insert(d(1, 0.1, 5));
        v.insert(d(2, 0.2, 1));
        assert!(v.insert(d(3, 0.3, 0))); // evicts id 1 (age 5)
        assert!(!v.contains(NodeId::new(1)));
        assert!(v.contains(NodeId::new(2)));
        assert!(v.contains(NodeId::new(3)));
        // A newcomer older than everything is rejected.
        assert!(!v.insert(d(4, 0.4, 10)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn remove_and_retain() {
        let mut v = View::new(4);
        v.insert(d(1, 0.1, 0));
        v.insert(d(2, 0.2, 0));
        v.insert(d(3, 0.3, 0));
        assert_eq!(v.remove(NodeId::new(2)).unwrap().pos, 0.2);
        assert_eq!(v.remove(NodeId::new(2)), None);
        v.retain(|e| e.id != NodeId::new(1));
        assert_eq!(v.ids(), vec![NodeId::new(3)]);
    }

    #[test]
    fn ages_and_oldest() {
        let mut v = View::new(4);
        v.insert(d(1, 0.1, 0));
        v.insert(d(2, 0.2, 3));
        v.increment_ages();
        assert_eq!(v.get(NodeId::new(1)).unwrap().age, 1);
        assert_eq!(v.oldest().unwrap().id, NodeId::new(2));
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let mut v = View::new(10);
        for i in 0..10 {
            v.insert(d(i, i as f64, 0));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let s = v.sample(4, &mut rng);
        assert_eq!(s.len(), 4);
        let mut ids: Vec<_> = s.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        assert_eq!(v.sample(99, &mut rng).len(), 10);
    }

    #[test]
    fn keep_best_by_ranks_and_truncates() {
        let mut v = View::new(10);
        for i in 0..6 {
            v.insert(d(i, i as f64, 0));
        }
        v.keep_best_by(3, |e| (e.pos - 3.0).abs());
        let mut ids = v.ids();
        ids.sort();
        assert_eq!(ids, vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)]);
    }

    #[test]
    fn random_on_empty_is_none() {
        let v: View<f64> = View::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(v.random(&mut rng).is_none());
    }

    #[test]
    fn extend_respects_dedup() {
        let mut v = View::new(5);
        v.extend([d(1, 0.1, 1), d(1, 0.2, 0), d(2, 0.3, 0)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(NodeId::new(1)).unwrap().pos, 0.2);
    }

    proptest! {
        #[test]
        fn never_exceeds_cap_and_ids_unique(
            ops in proptest::collection::vec((0u64..20, 0u32..10), 0..60),
            cap in 1usize..8,
        ) {
            let mut v = View::new(cap);
            for (id, age) in ops {
                v.insert(d(id, id as f64, age));
                prop_assert!(v.len() <= cap);
                let mut ids = v.ids();
                ids.sort();
                let n = ids.len();
                ids.dedup();
                prop_assert_eq!(ids.len(), n, "duplicate ids in view");
            }
        }

        #[test]
        fn get_after_insert_when_capacity_allows(
            id in 0u64..100,
            pos in -10.0..10.0f64,
        ) {
            let mut v = View::new(4);
            v.insert(Descriptor::new(NodeId::new(id), pos));
            prop_assert_eq!(v.get(NodeId::new(id)).unwrap().pos, pos);
        }
    }
}
