//! Membership substrate for the Polystyrene reproduction: node identities,
//! gossip views, the peer-sampling service and failure detection.
//!
//! Polystyrene (ICDCS 2014) sits on a classic two-layer gossip stack
//! (paper Fig. 2 and Sec. III-A): the bottom layer is a *peer-sampling
//! service* (RPS) that "provides each node with a random sample of the rest
//! of the network", and both layers assume "a (possibly imperfect) failure
//! detector". This crate implements those substrates from scratch:
//!
//! * [`NodeId`] / [`Descriptor`] — node identities and the `(id, position,
//!   age)` records gossip protocols exchange;
//! * [`View`] — the bounded, deduplicated neighbor lists every gossip layer
//!   maintains;
//! * [`rps::PeerSampling`] — a Cyclon-style shuffling peer sampler
//!   (Voulgaris et al., cited as \[17\]/\[21\] in the paper);
//! * [`fd`] — the failure-detector abstraction with a perfect detector, a
//!   delayed detector (detection lag injection) and a flaky detector
//!   (false suspicions) for robustness testing.
//!
//! # Example
//!
//! ```
//! use polystyrene_membership::{Descriptor, NodeId, View};
//!
//! let mut view: View<[f64; 2]> = View::new(3);
//! view.insert(Descriptor::new(NodeId::new(1), [0.0, 0.0]));
//! view.insert(Descriptor::new(NodeId::new(2), [1.0, 0.0]));
//! assert_eq!(view.len(), 2);
//! assert!(view.contains(NodeId::new(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptor;
pub mod fd;
pub mod id;
pub mod rps;
pub mod view;

pub use descriptor::Descriptor;
pub use fd::{
    DelayedFailureDetector, FailureDetector, FlakyFailureDetector, SharedFailureDetector,
};
pub use id::{IdHashMap, IdHashSet, IdHasher, NodeId};
pub use rps::PeerSampling;
pub use view::View;
