//! The peer-sampling service (RPS).
//!
//! "The bottom overlay (peer sampling) provides each node with a random
//! sample of the rest of the network. This is achieved by having nodes
//! exchange and shuffle their neighbors' list in asynchronous gossip
//! rounds" (paper Sec. II-B). This is a Cyclon-style shuffler (Voulgaris,
//! Gavidia, van Steen — the paper's reference \[21\]): each round a node
//! picks its *oldest* neighbor, swaps a random subset of its view with it,
//! and the two merge the received entries preferring fresh descriptors.
//!
//! The API is message-oriented (`make_request` / `handle_request` /
//! `handle_reply`) so the same state machine drives both the round-based
//! simulator and the threaded runtime. [`shuffle_exchange`] composes the
//! three steps for engines with direct access to both endpoints.

use crate::descriptor::Descriptor;
use crate::id::NodeId;
use crate::view::View;
use rand::Rng;

/// Cyclon-style peer-sampling state of one node.
///
/// # Example
///
/// ```
/// use polystyrene_membership::{Descriptor, NodeId, PeerSampling};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut a: PeerSampling<f64> = PeerSampling::new(8, 4);
/// a.bootstrap([Descriptor::new(NodeId::new(2), 0.5)]);
/// assert_eq!(a.random_peer(&mut rng), Some(NodeId::new(2)));
/// ```
#[derive(Clone, Debug)]
pub struct PeerSampling<P> {
    view: View<P>,
    shuffle_len: usize,
}

impl<P: Clone> PeerSampling<P> {
    /// Creates an empty sampler with view capacity `cap`, exchanging
    /// `shuffle_len` descriptors per shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `shuffle_len` is zero or exceeds `cap` (a shuffle could
    /// then never fit back into the view).
    pub fn new(cap: usize, shuffle_len: usize) -> Self {
        assert!(
            shuffle_len > 0 && shuffle_len <= cap,
            "shuffle length must be in [1, cap={cap}], got {shuffle_len}"
        );
        Self {
            view: View::new(cap),
            shuffle_len,
        }
    }

    /// Seeds the view with initial contacts (join procedure).
    pub fn bootstrap(&mut self, contacts: impl IntoIterator<Item = Descriptor<P>>) {
        self.view.extend(contacts);
    }

    /// Read access to the current view.
    pub fn view(&self) -> &View<P> {
        &self.view
    }

    /// Number of descriptors exchanged per shuffle.
    pub fn shuffle_len(&self) -> usize {
        self.shuffle_len
    }

    /// Ages the view by one round and returns the shuffle partner for this
    /// round (the oldest neighbor), without removing it yet.
    pub fn begin_round(&mut self) -> Option<NodeId> {
        self.view.increment_ages();
        self.view.oldest().map(|d| d.id)
    }

    /// Builds the shuffle request for `partner`: the partner's entry is
    /// dropped from the view and the request contains a fresh descriptor of
    /// the sender plus up to `shuffle_len - 1` random other entries.
    pub fn make_request<R: Rng + ?Sized>(
        &mut self,
        self_descriptor: Descriptor<P>,
        partner: NodeId,
        rng: &mut R,
    ) -> Vec<Descriptor<P>> {
        let mut out = Vec::new();
        self.make_request_into(self_descriptor, partner, rng, &mut out);
        out
    }

    /// [`PeerSampling::make_request`] appending into a caller-owned
    /// (typically pooled) buffer. Rng draw sequence is identical.
    pub fn make_request_into<R: Rng + ?Sized>(
        &mut self,
        self_descriptor: Descriptor<P>,
        partner: NodeId,
        rng: &mut R,
        out: &mut Vec<Descriptor<P>>,
    ) {
        self.view.remove(partner);
        self.view
            .sample_into(self.shuffle_len.saturating_sub(1), rng, out);
        out.push(self_descriptor);
    }

    /// Handles an incoming shuffle request: replies with a random sample of
    /// the local view and merges the received entries.
    pub fn handle_request<R: Rng + ?Sized>(
        &mut self,
        self_id: NodeId,
        incoming: &[Descriptor<P>],
        rng: &mut R,
    ) -> Vec<Descriptor<P>> {
        let mut reply = Vec::new();
        self.handle_request_into(self_id, incoming, rng, &mut reply);
        reply
    }

    /// [`PeerSampling::handle_request`] building the reply in a
    /// caller-owned (typically pooled) buffer. Rng draw sequence is
    /// identical.
    pub fn handle_request_into<R: Rng + ?Sized>(
        &mut self,
        self_id: NodeId,
        incoming: &[Descriptor<P>],
        rng: &mut R,
        reply: &mut Vec<Descriptor<P>>,
    ) {
        self.view.sample_into(self.shuffle_len, rng, reply);
        self.merge(self_id, incoming, reply);
    }

    /// Handles the shuffle reply: merges received entries, preferring to
    /// overwrite the slots that were sent out in the request.
    pub fn handle_reply(
        &mut self,
        self_id: NodeId,
        sent: &[Descriptor<P>],
        received: &[Descriptor<P>],
    ) {
        self.merge(self_id, received, sent);
    }

    /// Cyclon merge: insert `received` descriptors, never pointing at
    /// ourselves; when the view is full, evict entries that were just
    /// `sent` to the partner to make room.
    fn merge(&mut self, self_id: NodeId, received: &[Descriptor<P>], sent: &[Descriptor<P>]) {
        let mut evictable: Vec<NodeId> = sent.iter().map(|d| d.id).collect();
        for d in received {
            if d.id == self_id {
                continue;
            }
            if self.view.insert(d.clone()) {
                continue;
            }
            if self.view.contains(d.id) {
                continue; // fresher duplicate already present
            }
            // View full: sacrifice one of the entries we shipped out.
            while let Some(victim) = evictable.pop() {
                if self.view.remove(victim).is_some() {
                    self.view.insert(d.clone());
                    break;
                }
            }
        }
    }

    /// Removes every view entry the failure detector flags, returning how
    /// many were dropped.
    pub fn remove_failed(&mut self, is_failed: impl Fn(NodeId) -> bool) -> usize {
        let before = self.view.len();
        self.view.retain(|d| !is_failed(d.id));
        before - self.view.len()
    }

    /// A uniformly random peer id from the view — the sampling primitive
    /// Polystyrene uses to pick backup nodes and migration candidates.
    pub fn random_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.view.random(rng).map(|d| d.id)
    }

    /// Up to `n` distinct random peers from the view.
    pub fn random_peers<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<NodeId> {
        self.view.sample(n, rng).into_iter().map(|d| d.id).collect()
    }

    /// Appends up to `n` distinct random peers from the view into `out` —
    /// the scratch-buffer twin of [`PeerSampling::random_peers`] for hot
    /// per-round callers. Draws from the RNG exactly as `random_peers`
    /// does, so seeded histories are identical either way.
    pub fn random_peers_into<R: Rng + ?Sized>(&self, n: usize, rng: &mut R, out: &mut Vec<NodeId>) {
        self.view.sample_ids_into(n, rng, out);
    }
}

/// Outcome of a complete pairwise shuffle, for engines that drive both
/// endpoints directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShuffleOutcome {
    /// Descriptors sent by the initiator.
    pub sent: usize,
    /// Descriptors sent back by the responder.
    pub received: usize,
}

/// Runs one full Cyclon shuffle between initiator `a` and responder `b`
/// (both sides merged), returning the exchanged descriptor counts.
///
/// The initiator must already have selected `b` via
/// [`PeerSampling::begin_round`]. Simulators call this directly; the
/// threaded runtime performs the same three steps over real messages.
pub fn shuffle_exchange<P: Clone, R: Rng + ?Sized>(
    a: &mut PeerSampling<P>,
    a_descriptor: Descriptor<P>,
    b: &mut PeerSampling<P>,
    b_id: NodeId,
    rng: &mut R,
) -> ShuffleOutcome {
    let a_id = a_descriptor.id;
    let request = a.make_request(a_descriptor, b_id, rng);
    let reply = b.handle_request(b_id, &request, rng);
    a.handle_reply(a_id, &request, &reply);
    ShuffleOutcome {
        sent: request.len(),
        received: reply.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn desc(id: u64) -> Descriptor<f64> {
        Descriptor::new(NodeId::new(id), id as f64)
    }

    #[test]
    #[should_panic(expected = "shuffle length")]
    fn rejects_zero_shuffle_len() {
        let _: PeerSampling<f64> = PeerSampling::new(8, 0);
    }

    #[test]
    #[should_panic(expected = "shuffle length")]
    fn rejects_shuffle_len_above_cap() {
        let _: PeerSampling<f64> = PeerSampling::new(4, 5);
    }

    #[test]
    fn begin_round_picks_oldest_and_ages_view() {
        let mut ps: PeerSampling<f64> = PeerSampling::new(8, 3);
        ps.bootstrap([
            Descriptor::with_age(NodeId::new(1), 1.0, 0),
            Descriptor::with_age(NodeId::new(2), 2.0, 5),
        ]);
        assert_eq!(ps.begin_round(), Some(NodeId::new(2)));
        assert_eq!(ps.view().get(NodeId::new(1)).unwrap().age, 1);
    }

    #[test]
    fn begin_round_on_empty_view() {
        let mut ps: PeerSampling<f64> = PeerSampling::new(8, 3);
        assert_eq!(ps.begin_round(), None);
    }

    #[test]
    fn request_contains_fresh_self_and_drops_partner() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps: PeerSampling<f64> = PeerSampling::new(8, 3);
        ps.bootstrap([desc(1), desc(2), desc(3)]);
        let req = ps.make_request(desc(0), NodeId::new(2), &mut rng);
        assert!(req.iter().any(|d| d.id == NodeId::new(0) && d.age == 0));
        assert!(req.len() <= 3);
        assert!(!ps.view().contains(NodeId::new(2)));
    }

    #[test]
    fn full_shuffle_spreads_entries_both_ways() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut a: PeerSampling<f64> = PeerSampling::new(8, 4);
        let mut b: PeerSampling<f64> = PeerSampling::new(8, 4);
        a.bootstrap([
            desc(1),
            desc(2),
            Descriptor::with_age(NodeId::new(9), 9.0, 4),
        ]);
        b.bootstrap([desc(3), desc(4)]);
        let partner = a.begin_round().unwrap();
        assert_eq!(partner, NodeId::new(9));
        // Pretend 9 is b for the exchange mechanics.
        let out = shuffle_exchange(&mut a, desc(0), &mut b, NodeId::new(9), &mut rng);
        assert!(out.sent >= 1);
        // b learned about a (id 0) or some of a's neighbors.
        assert!(b.view().len() >= 3);
        // a merged b's reply.
        assert!(a.view().len() >= 2);
        // Nobody stores itself.
        assert!(!b.view().contains(NodeId::new(9)));
        assert!(!a.view().contains(NodeId::new(0)));
    }

    #[test]
    fn merge_never_stores_self_or_overflows() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut ps: PeerSampling<f64> = PeerSampling::new(3, 3);
        ps.bootstrap([desc(1), desc(2), desc(3)]);
        let incoming = vec![desc(4), desc(5), desc(0)];
        let reply = ps.handle_request(NodeId::new(0), &incoming, &mut rng);
        assert!(reply.len() <= 3);
        assert!(ps.view().len() <= 3);
        assert!(!ps.view().contains(NodeId::new(0)));
    }

    #[test]
    fn remove_failed_purges_view() {
        let mut ps: PeerSampling<f64> = PeerSampling::new(8, 3);
        ps.bootstrap([desc(1), desc(2), desc(3)]);
        let removed = ps.remove_failed(|id| id.as_u64() % 2 == 1);
        assert_eq!(removed, 2);
        assert_eq!(ps.view().ids(), vec![NodeId::new(2)]);
    }

    #[test]
    fn random_peers_are_from_view() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ps: PeerSampling<f64> = PeerSampling::new(8, 3);
        ps.bootstrap([desc(1), desc(2), desc(3), desc(4)]);
        let peers = ps.random_peers(3, &mut rng);
        assert_eq!(peers.len(), 3);
        for p in peers {
            assert!(ps.view().contains(p));
        }
    }

    /// After many rounds of an all-pairs simulation, every node's view
    /// should contain a changing random mix — basic health of the sampler.
    #[test]
    #[allow(clippy::needless_range_loop)] // indices drive split_at_mut
    fn gossip_keeps_views_full_and_varied() {
        let n = 32usize;
        let cap = 6;
        let mut rng = StdRng::seed_from_u64(42);
        let mut nodes: Vec<PeerSampling<f64>> = (0..n).map(|_| PeerSampling::new(cap, 3)).collect();
        // Ring-ish bootstrap: i knows its next three successors (a 1-contact
        // bootstrap is degenerate for any shuffler — requests would only
        // ever carry the sender's own descriptor).
        for i in 0..n {
            let contacts: Vec<_> = (1..=3).map(|k| desc(((i + k) % n) as u64)).collect();
            nodes[i].bootstrap(contacts);
        }
        for _round in 0..60 {
            for i in 0..n {
                let partner = match nodes[i].begin_round() {
                    Some(p) => p,
                    None => continue,
                };
                let j = partner.index();
                if i == j {
                    continue;
                }
                let (left, right) = if i < j {
                    let (l, r) = nodes.split_at_mut(j);
                    (&mut l[i], &mut r[0])
                } else {
                    let (l, r) = nodes.split_at_mut(i);
                    (&mut r[0], &mut l[j])
                };
                shuffle_exchange(left, desc(i as u64), right, partner, &mut rng);
            }
        }
        // Every view is full, and collectively the views reference most
        // of the network (randomness, not a frozen ring).
        let mut referenced = std::collections::HashSet::new();
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.view().len(), cap, "node {i} view not full");
            referenced.extend(node.view().ids());
        }
        assert!(referenced.len() > n / 2, "views collapsed: {referenced:?}");
    }

    proptest! {
        #[test]
        fn shuffle_preserves_view_bounds(
            seed in 0u64..200,
            a_ids in proptest::collection::hash_set(1u64..50, 1..8),
            b_ids in proptest::collection::hash_set(50u64..100, 1..8),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a: PeerSampling<f64> = PeerSampling::new(8, 4);
            let mut b: PeerSampling<f64> = PeerSampling::new(8, 4);
            a.bootstrap(a_ids.iter().map(|&i| desc(i)));
            b.bootstrap(b_ids.iter().map(|&i| desc(i)));
            let partner = a.begin_round().unwrap();
            shuffle_exchange(&mut a, desc(0), &mut b, partner, &mut rng);
            prop_assert!(a.view().len() <= 8);
            prop_assert!(b.view().len() <= 8);
            prop_assert!(!a.view().contains(NodeId::new(0)));
        }
    }
}
