//! Datacenter failover: the scenario that motivates the paper.
//!
//! A key-value overlay maps contiguous key ranges onto a torus, and — for
//! data locality — each quadrant of the torus is hosted in one datacenter
//! ("all the virtual machines handling contiguous keys hosted in the same
//! rack"). When a whole datacenter goes dark, a classic topology loses
//! that quadrant of the key space forever; Polystyrene redistributes the
//! orphaned key ranges across the surviving datacenters.
//!
//! ```sh
//! cargo run --release --example datacenter_failover
//! ```

use polystyrene_repro::prelude::*;

/// Which datacenter hosts a node, by the quadrant of its original point.
fn datacenter(pos: &[f64; 2], width: f64, height: f64) -> usize {
    let east = pos[0] >= width / 2.0;
    let north = pos[1] >= height / 2.0;
    match (east, north) {
        (false, false) => 0,
        (true, false) => 1,
        (false, true) => 2,
        (true, true) => 3,
    }
}

fn run(label: &str, polystyrene: bool) -> (f64, f64) {
    let (cols, rows) = (32, 32);
    let (w, h) = (cols as f64, rows as f64);
    let mut config = EngineConfig::default();
    config.area = w * h;
    config.poly = PolystyreneConfig::builder().replication(6).build();
    let mut engine = Engine::new(
        Torus2::new(w, h),
        shapes::torus_grid(cols, rows, 1.0),
        config,
    );
    if !polystyrene {
        engine.disable_polystyrene();
    }

    engine.run(20);
    // Datacenter 3 (north-east quadrant) suffers a power failure.
    let killed = engine.fail_original_region(move |p| datacenter(p, w, h) == 3);
    println!("{label}: datacenter 3 lost ({} nodes down)", killed.len());
    engine.run(25);

    let m = engine.history().last().unwrap();
    println!(
        "{label}: homogeneity {:.3} (uniform coverage would be < {:.3}), \
         {:.1}% of key ranges still served",
        m.homogeneity,
        m.reference_homogeneity,
        m.surviving_points * 100.0
    );
    (m.homogeneity, m.surviving_points)
}

fn main() {
    let (poly_h, poly_survive) = run("Polystyrene K=6", true);
    let (tman_h, tman_survive) = run("T-Man baseline ", false);
    println!(
        "\nkey-space coverage after failover:\n  \
         Polystyrene: homogeneity {poly_h:.3}, {:.1}% ranges alive\n  \
         T-Man:       homogeneity {tman_h:.3}, {:.1}% ranges alive",
        poly_survive * 100.0,
        tman_survive * 100.0
    );
    assert!(poly_h < tman_h, "Polystyrene must preserve coverage better");
    assert!(
        poly_survive > 0.99,
        "K=6 over a 25% failure loses ~0.02% of ranges"
    );
    assert!(
        tman_survive < 0.80,
        "the baseline forfeits the whole quadrant"
    );
}
