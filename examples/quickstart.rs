//! Quickstart: the paper's headline result in ~30 lines.
//!
//! Build a torus overlay, kill half of it in one correlated blow, and
//! watch Polystyrene re-form the full torus within a few gossip rounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use polystyrene_repro::prelude::*;

fn main() {
    // A 40×20 torus: 800 nodes, each founding one data point of the shape.
    let (cols, rows) = (40, 20);
    let mut config = EngineConfig::default();
    config.area = (cols * rows) as f64;
    config.poly = PolystyreneConfig::builder().replication(4).build();
    let mut engine = Engine::new(
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        config,
    );

    // Phase 1: let T-Man converge while Polystyrene replicates.
    engine.run(20);
    let m = engine.compute_metrics();
    println!(
        "converged: proximity {:.2}, homogeneity {:.3}",
        m.proximity, m.homogeneity
    );

    // Phase 2: a datacenter hosting the right half of the torus dies.
    let killed = engine.fail_original_region(shapes::in_right_half(cols as f64));
    println!(
        "catastrophe: {} of {} nodes crashed simultaneously",
        killed.len(),
        cols * rows
    );

    // Watch the survivors re-adopt the dead half's data points and migrate.
    for _ in 0..12 {
        let m = engine.step();
        println!(
            "round {:>2}: homogeneity {:.3} (target < {:.3}), proximity {:.2}, {:.1} points/node",
            m.round, m.homogeneity, m.reference_homogeneity, m.proximity, m.points_per_node
        );
    }

    let final_metrics = engine.history().last().unwrap();
    let reshaped = final_metrics.homogeneity < final_metrics.reference_homogeneity;
    println!(
        "\nshape {} — {:.1}% of the original data points survived",
        if reshaped {
            "RE-FORMED"
        } else {
            "still degraded"
        },
        final_metrics.surviving_points * 100.0
    );
    assert!(reshaped, "the torus should have re-formed");
}
