//! A key-value store that survives losing half its fleet.
//!
//! Keys hash onto the torus; greedy routing over the overlay finds the
//! responsible node. When a datacenter hosting half the torus dies,
//! Polystyrene re-forms the shape and every surviving value becomes
//! addressable again.
//!
//! ```sh
//! cargo run --release --example key_value_store
//! ```

use polystyrene_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (cols, rows) = (24, 12);
    let (w, h) = (cols as f64, rows as f64);
    let mut cfg = EngineConfig::default();
    cfg.area = w * h;
    cfg.poly = PolystyreneConfig::builder().replication(6).build();
    let mut engine = Engine::new(Torus2::new(w, h), shapes::torus_grid(cols, rows, 1.0), cfg);
    engine.run(15);

    let space = *engine.space();
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = KeyValueStore::new(w, h, 128, 2.0);

    // Populate.
    let keys: Vec<String> = (0..60).map(|i| format!("user:{i}")).collect();
    {
        let oracle = EngineOracle::new(&engine, 8);
        for k in &keys {
            store
                .put(&space, &oracle, k, &format!("profile-of-{k}"), &mut rng)
                .expect("put should succeed on a healthy overlay");
        }
    }
    println!(
        "stored {} values across {} nodes",
        store.len(),
        engine.alive_count()
    );

    // Catastrophe.
    let killed = engine.fail_original_region(shapes::in_right_half(w));
    println!("datacenter failure: {} nodes down", killed.len());
    engine.run(15);

    // Repair and verify.
    let oracle = EngineOracle::new(&engine, 8);
    let (moved, lost) = store.rebalance(&space, &oracle, &mut rng);
    println!("rebalance: {moved} values handed over, {lost} lost with their holders");
    let mut served = 0;
    for k in &keys {
        if store.get(&space, &oracle, k, &mut rng).is_ok() {
            served += 1;
        }
    }
    println!(
        "{served}/{} surviving values addressable after reshaping ({} were lost)",
        store.len(),
        lost
    );
    assert_eq!(
        served,
        store.len(),
        "reshaped overlay must serve every survivor"
    );
    // ~Half the holders die in expectation; allow sampling noise.
    assert!(
        lost <= keys.len() * 2 / 3,
        "far too many holders lost: {lost}"
    );
}
