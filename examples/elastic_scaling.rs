//! Elastic scaling: shrink under churn, then re-provision fresh capacity.
//!
//! Cloud deployments both lose and (re)gain resources: the paper's Phase 3
//! re-injects 1600 empty nodes after the catastrophe and shows Polystyrene
//! redistributing the shape across them (Fig. 9), which T-Man alone cannot
//! do. This example scales a torus down 50 % (random churn rather than a
//! single regional blast) and then doubles capacity back, watching the
//! shape follow the fleet.
//!
//! ```sh
//! cargo run --release --example elastic_scaling
//! ```

use polystyrene_repro::prelude::*;

fn main() {
    let (cols, rows) = (32, 16);
    let mut config = EngineConfig::default();
    config.area = (cols * rows) as f64;
    config.poly = PolystyreneConfig::builder().replication(4).build();
    let mut engine = Engine::new(
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        config,
    );

    engine.run(20);
    println!(
        "steady state: {} nodes, homogeneity {:.3}",
        engine.alive_count(),
        engine.compute_metrics().homogeneity
    );

    // Scale-in: churn takes out half the fleet over five waves.
    for wave in 1..=5 {
        engine.fail_random_fraction(0.13);
        engine.run(4);
        let m = engine.history().last().unwrap();
        println!(
            "churn wave {wave}: {} nodes left, homogeneity {:.3} (H {:.3})",
            m.alive_nodes, m.homogeneity, m.reference_homogeneity
        );
    }
    engine.run(10);
    let shrunk = *engine.history().last().unwrap();
    assert!(
        shrunk.homogeneity < shrunk.reference_homogeneity,
        "the half-size fleet must still cover the full torus"
    );

    // Scale-out: re-provision a fresh batch of empty nodes.
    let fresh = engine.inject(shapes::torus_grid_offset(cols, rows / 2, 1.0));
    println!("\nre-provisioned {} empty nodes", fresh.len());
    for _ in 0..15 {
        engine.step();
    }
    let grown = *engine.history().last().unwrap();
    println!(
        "after scale-out: {} nodes, homogeneity {:.3} (H {:.3}), {:.2} points/node",
        grown.alive_nodes, grown.homogeneity, grown.reference_homogeneity, grown.points_per_node
    );
    assert!(
        grown.homogeneity < shrunk.homogeneity,
        "denser fleet ⇒ finer coverage"
    );

    // The fresh nodes are not freeloading: most now host data points.
    let busy = fresh
        .iter()
        .filter(|&&id| {
            !engine
                .poly_state(id)
                .map(|s| s.guests.is_empty())
                .unwrap_or(true)
        })
        .count();
    println!("{busy}/{} fresh nodes acquired data points", fresh.len());
    assert!(
        busy * 2 > fresh.len(),
        "the shape must spread onto new capacity"
    );
}
