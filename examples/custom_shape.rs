//! Custom shapes and custom metric spaces.
//!
//! Polystyrene's only requirement on the data space is a distance function
//! (paper Sec. III-A). This example runs the *same* engine on (a) a 1-D
//! modular ring — the Chord/Pastry shape — and (b) an irregular two-blob
//! shape in the Euclidean plane, and verifies shape preservation through a
//! half-fleet catastrophe on both.
//!
//! ```sh
//! cargo run --release --example custom_shape
//! ```

use polystyrene_repro::prelude::*;

fn ring_demo() {
    println!("=== ring overlay (1-D modular space) ===");
    let n = 256;
    let circumference = 256.0;
    let mut config = EngineConfig::default();
    // Reference homogeneity is 2-D; for the ring we track raw homogeneity.
    config.area = circumference;
    config.poly = PolystyreneConfig::builder().replication(4).build();
    let shape = shapes::ring_points(n, circumference);
    let mut engine = Engine::new(Ring::new(circumference), shape, config);

    engine.run(15);
    let before = engine.compute_metrics().homogeneity;
    // One contiguous arc of the ring — half the key space — goes down.
    engine.fail_original_region(|&p| p >= circumference / 2.0);
    let at_failure = engine.compute_metrics().homogeneity;
    engine.run(20);
    let after = engine.history().last().unwrap().homogeneity;
    println!("homogeneity: converged {before:.3} → failure {at_failure:.3} → healed {after:.3}");
    assert!(after < at_failure / 4.0, "ring failed to heal: {after:.3}");
}

fn blob_demo() {
    println!("=== irregular shape (two Euclidean blobs) ===");
    // An hourglass of two circles joined by a line — nothing grid-like.
    let mut shape = shapes::circle_points(120, 10.0);
    shape.extend(
        shapes::circle_points(120, 10.0)
            .into_iter()
            .map(|[x, y]| [x + 40.0, y]),
    );
    shape.extend(shapes::line_points(60, [10.0, 0.0], [30.0, 0.0]));
    let n = shape.len();
    let mut config = EngineConfig::default();
    config.area = 600.0; // rough footprint, only used for reporting
    config.poly = PolystyreneConfig::builder().replication(6).build();
    let mut engine = Engine::new(Euclidean2, shape, config);

    engine.run(15);
    // The right blob's hosting site dies entirely.
    let killed = engine.fail_original_region(|p| p[0] >= 20.0);
    println!("{killed} of {n} nodes crashed", killed = killed.len());
    let at_failure = engine.compute_metrics().homogeneity;
    engine.run(25);
    let after = engine.history().last().unwrap().homogeneity;
    println!("homogeneity: failure {at_failure:.3} → healed {after:.3}");
    assert!(
        after < at_failure / 3.0,
        "survivors failed to re-cover the right blob: {after:.3}"
    );
}

fn main() {
    ring_demo();
    println!();
    blob_demo();
    println!("\nthe same protocol preserved both shapes — no code changed, only the metric space");
}
