//! A live threaded deployment: the paper's system model for real.
//!
//! Spawns one OS thread per node, gossiping over channels with heartbeat
//! failure detection, kills a third of the fleet mid-flight, and watches
//! the shape recover — no simulator, no synchronized rounds.
//!
//! ```sh
//! cargo run --release --example live_cluster
//! ```

use polystyrene_repro::prelude::*;
use std::time::Duration;

fn main() {
    let (cols, rows) = (9, 6);
    let mut config = RuntimeConfig::default();
    config.tick = Duration::from_millis(5);
    config.poly = PolystyreneConfig::builder().replication(4).build();

    let cluster = Cluster::spawn(
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        config,
    );
    println!("spawned {} node threads", cluster.alive_ids().len());

    cluster.await_ticks(15, Duration::from_secs(20));
    let steady = cluster.observe();
    println!(
        "steady state: {} nodes, {:.2} points/node, homogeneity {:.3}",
        steady.alive_nodes, steady.points_per_node, steady.homogeneity
    );

    // Crash-stop a contiguous third of the torus: threads die with their
    // mailboxes; survivors must notice via heartbeat timeouts.
    let killed = cluster.kill_region(|p| p[0] >= 6.0);
    println!("killed {} nodes (no goodbye messages)", killed.len());

    cluster.run_for(Duration::from_millis(600));
    let healed = cluster.observe();
    println!(
        "after recovery: {} nodes, {:.1}% points surviving, homogeneity {:.3}",
        healed.alive_nodes,
        healed.surviving_points * 100.0,
        healed.homogeneity
    );
    assert!(healed.surviving_points > 0.85);
    assert!(healed.homogeneity < steady.homogeneity + 1.5);

    cluster.shutdown();
    println!("orderly shutdown complete");
}
