//! # Polystyrene reproduction — facade crate
//!
//! One-stop re-export of the full reproduction of *Polystyrene: the
//! Decentralized Data Shape That Never Dies* (Bouget, Kermarrec, Kervadec,
//! Taïani — ICDCS 2014):
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | spaces | [`space`] | metric spaces, medoids, diameters, shapes, stats |
//! | membership | [`membership`] | node ids, gossip views, RPS, failure detectors |
//! | topology | [`topology`] | T-Man, Vicinity |
//! | **core** | [`core`] | the Polystyrene layer (projection, backup, recovery, migration, splits) |
//! | **protocol** | [`protocol`] | the sans-IO per-node state machine + shared scenario scripts |
//! | routing | [`routing`] | greedy routing + key-value facade (the motivating application) |
//! | simulation | [`sim`] | cycle-driven engine + every paper experiment |
//! | network simulation | [`netsim`] | deterministic discrete-event substrate: latency, loss, partitions |
//! | deployment | [`runtime`] | threaded message-passing cluster |
//! | wire deployment | [`transport`] | the byte codec, length-framed, over real TCP sockets |
//! | **experiment plane** | [`lab`] | one `Substrate` seam + one driver over all four substrates |
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the architecture
//! and per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! # Example
//!
//! ```
//! use polystyrene_repro::prelude::*;
//!
//! // Build the paper's torus in miniature, kill half of it, watch it heal.
//! let mut cfg = EngineConfig::default();
//! cfg.area = 128.0;
//! let mut engine = Engine::new(
//!     Torus2::new(16.0, 8.0),
//!     shapes::torus_grid(16, 8, 1.0),
//!     cfg,
//! );
//! engine.run(12);
//! engine.fail_original_region(shapes::in_right_half(16.0));
//! engine.run(15);
//! let m = engine.history().last().unwrap();
//! assert!(m.homogeneity < m.reference_homogeneity, "the shape must re-form");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use polystyrene as core;
pub use polystyrene_lab as lab;
pub use polystyrene_membership as membership;
pub use polystyrene_netsim as netsim;
pub use polystyrene_protocol as protocol;
pub use polystyrene_routing as routing;
pub use polystyrene_runtime as runtime;
pub use polystyrene_sim as sim;
pub use polystyrene_space as space;
pub use polystyrene_topology as topology;
pub use polystyrene_transport as transport;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use polystyrene::prelude::*;
    pub use polystyrene_lab::{
        build_substrate, run_experiment, summary_json, ExperimentSummary, ExperimentTrace,
        LabConfig, LiveSubstrate, Substrate, SubstrateKind,
    };
    pub use polystyrene_membership::{Descriptor, FailureDetector, NodeId, PeerSampling, View};
    pub use polystyrene_netsim::{net_reshaping_time, NetRoundMetrics, NetSim, NetSimConfig};
    pub use polystyrene_protocol::prelude::*;
    pub use polystyrene_routing::prelude::*;
    pub use polystyrene_runtime::{Cluster, RuntimeConfig};
    pub use polystyrene_sim::prelude::*;
    pub use polystyrene_space::prelude::*;
    pub use polystyrene_topology::{
        TMan, TManConfig, TopologyConstruction, Vicinity, VicinityConfig,
    };
    pub use polystyrene_transport::{TcpCluster, TcpConfig};
}
