//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this shim vendors the exact API surface the workspace uses: a seedable,
//! deterministic [`StdRng`] (xoshiro256++), the [`Rng`]/[`RngExt`] method
//! traits (`random_range`, `random_bool`, `random`), [`SeedableRng`],
//! [`seq::SliceRandom`] and [`seq::index::sample`]. Determinism is load
//! bearing: the simulation engine promises bit-identical histories for
//! identical seeds, and the tests assert it.
//!
//! The uniform-sampling implementations mirror the upstream semantics
//! (half-open and inclusive ranges, 53-bit float precision) but not the
//! upstream bit streams; only intra-shim determinism is guaranteed.

/// A source of random 64-bit words. Object-safe core trait.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::uniform::SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a type with a standard uniform distribution.
    fn random<T: distr::StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias of [`Rng`] matching the newer upstream split of convenience
/// methods into an extension trait.
pub use Rng as RngExt;

/// Maps 64 random bits to a `f64` in `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform distributions over ranges.
pub mod distr {
    use super::RngCore;

    /// Types samplable with `Rng::random()`.
    pub trait StandardUniform {
        /// Samples one value from the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            super::unit_f64(rng.next_u64())
        }
    }

    impl StandardUniform for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardUniform for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    /// Range sampling, mirroring `rand::distr::uniform`.
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample. The range must be non-empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
            /// Whether the range contains no values.
            fn is_empty(&self) -> bool;
        }

        /// Samples `[0, n)` without modulo bias (Lemire widening multiply).
        pub(crate) fn uniform_u64(rng: &mut (impl RngCore + ?Sized), n: u64) -> u64 {
            debug_assert!(n > 0);
            let mut m = (rng.next_u64() as u128) * (n as u128);
            let mut lo = m as u64;
            if lo < n {
                let threshold = n.wrapping_neg() % n; // 2^64 mod n
                while lo < threshold {
                    m = (rng.next_u64() as u128) * (n as u128);
                    lo = m as u64;
                }
            }
            (m >> 64) as u64
        }

        macro_rules! int_range {
            ($($t:ty => $wide:ty),* $(,)?) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                        self.start.wrapping_add(uniform_u64(rng, span) as $t)
                    }
                    fn is_empty(&self) -> bool {
                        self.start >= self.end
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
                    }
                    fn is_empty(&self) -> bool {
                        self.start() > self.end()
                    }
                }
            )*};
        }

        int_range!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
        );

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let u = crate::unit_f64(rng.next_u64()) as $t;
                        let v = self.start + u * (self.end - self.start);
                        // Floating rounding can land exactly on `end`.
                        if v >= self.end { self.start } else { v }
                    }
                    fn is_empty(&self) -> bool {
                        // NaN bounds also count as empty.
                        self.start.partial_cmp(&self.end) != Some(core::cmp::Ordering::Less)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let u = crate::unit_f64(rng.next_u64()) as $t;
                        self.start() + u * (self.end() - self.start())
                    }
                    fn is_empty(&self) -> bool {
                        !matches!(
                            self.start().partial_cmp(self.end()),
                            Some(core::cmp::Ordering::Less | core::cmp::Ordering::Equal)
                        )
                    }
                }
            )*};
        }

        float_range!(f32, f64);
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose entire stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG types.
pub mod rngs {
    pub use super::StdRng;
    /// Alias: this shim's small RNG is the same generator.
    pub type SmallRng = StdRng;
}

/// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
///
/// Deterministic, `Clone`, `Send` — every simulation run with the same
/// seed replays bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Sequence-related helpers (`shuffle`, `choose`, index sampling).
pub mod seq {
    use super::distr::uniform::uniform_u64;
    use super::RngCore;

    /// Slice extension methods.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }

    /// Alias kept for code written against rand 0.9's split traits.
    pub use SliceRandom as IndexedRandom;

    /// Distinct-index sampling.
    pub mod index {
        use super::super::distr::uniform::uniform_u64;
        use super::super::RngCore;

        /// A set of distinct indices in `[0, length)`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterator over the indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `[0, length)` by partial
        /// Fisher–Yates.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from a range of {length}"
            );
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + uniform_u64(rng, (length - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices.truncate(amount);
            IndexVec(indices)
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::{index::sample, SliceRandom};
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.random_range(-3i32..3);
            assert!((-3..3).contains(&i));
            let w = rng.random_range(0..=5u64);
            assert!(w <= 5);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "8-value range not covered: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(5..5usize);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }

    #[test]
    fn sample_yields_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(6);
        let picks = sample(&mut rng, 30, 10);
        let mut v = picks.into_vec();
        assert_eq!(v.len(), 10);
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 10);
        assert!(v.iter().all(|&i| i < 30));
    }
}
