//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Mirrors the guard-returning (non-`Result`) API of the real crate.
//! Poisoned locks are recovered rather than propagated: `parking_lot`
//! has no poisoning, so code written against it never expects lock
//! acquisition to fail.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
