//! No-op `serde_derive` stand-in for offline builds.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! on config and metrics structs — nothing serializes at runtime (reports
//! are written by hand-rolled CSV writers). These derives therefore accept
//! the attribute syntax and expand to nothing, which keeps the source
//! compatible with the real `serde` when a registry is available.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers), emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers), emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
