//! Offline mini `proptest`.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest API the workspace's ~40 property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * range strategies over ints and floats, tuple and array strategies,
//! * [`collection::vec`], [`collection::hash_set`], [`collection::btree_set`],
//! * [`Strategy::prop_map`] and [`Just`].
//!
//! Cases are generated from a deterministic per-test seed (hash of the
//! test name), so failures replay. There is **no shrinking**: a failing
//! case is reported with its case number as-is.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;
pub use strategy::{Just, Strategy};

/// A generation error: a failed `prop_assert!` or rejected `prop_assume!`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion inside the test body failed.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure error (used by the assertion macros).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection error (used by `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Deterministic RNG for a named test: same name, same case stream.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Drives one property test: draws inputs from `gen`, runs `body`.
///
/// Not called directly — the [`proptest!`] macro expands to this.
pub fn run_property<V>(
    name: &str,
    config: &ProptestConfig,
    mut generate: impl FnMut(&mut StdRng) -> V,
    mut body: impl FnMut(V) -> TestCaseResult,
) where
    V: std::fmt::Debug + Clone,
{
    let mut rng = rng_for(name);
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        let input = generate(&mut rng);
        match body(input.clone()) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "property '{name}': too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {case}:\n  {msg}\n  input: {input:?}");
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::{BTreeSet, HashSet};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by the collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi_exclusive {
                self.lo
            } else {
                rng.random_range(self.lo..self.hi_exclusive)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<E::Value>` with a length drawn from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet` with a target size drawn from `size`.
    ///
    /// If the element domain is too small the set may come out smaller
    /// than requested (matching proptest's collision behavior loosely).
    pub fn hash_set<E>(element: E, size: impl Into<SizeRange>) -> HashSetStrategy<E>
    where
        E: Strategy,
        E::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E> Strategy for HashSetStrategy<E>
    where
        E: Strategy,
        E::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<E::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = HashSet::new();
            for _ in 0..n * 10 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeSet` with a target size drawn from `size`.
    pub fn btree_set<E>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E> Strategy for BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n * 10 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// The common imports of a proptest-using test module.
pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
    pub use rand::rngs::StdRng;
}

/// Asserts a condition inside a property body; on failure the case input
/// is reported (no panic unwinding mid-generation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case, drawing a fresh one instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn holds(x in 0..100u64, v in collection::vec(0.0..1.0f64, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one item per test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_parens)]
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &$config,
                |__rng| ( $( $crate::Strategy::generate(&($strat), __rng) ),+ ),
                |( $($arg),+ )| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}
