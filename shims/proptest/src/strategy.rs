//! The [`Strategy`] trait and primitive strategy implementations.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy is just a deterministic function of the runner RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, re-drawing until `f` accepts one.
    ///
    /// Panics after 1000 consecutive rejections.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_arrays_and_map() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = (0..10u64).generate(&mut rng);
            assert!(x < 10);
            let (a, b) = (0..5usize, -1.0..1.0f64).generate(&mut rng);
            assert!(a < 5 && (-1.0..1.0).contains(&b));
            let [p, q] = [0.0..80.0, 0.0..40.0].generate(&mut rng);
            assert!((0.0..80.0).contains(&p) && (0.0..40.0).contains(&q));
            let m = (0..4u32).prop_map(|v| v * 10).generate(&mut rng);
            assert!(m % 10 == 0 && m < 40);
        }
    }

    #[test]
    fn filter_and_just() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v = (0..100u64)
                .prop_filter("even", |v| v % 2 == 0)
                .generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert_eq!(Just(7u8).generate(&mut rng), 7);
        }
    }
}
