//! Offline mini-criterion.
//!
//! The build environment cannot fetch the real `criterion`, so this shim
//! implements the subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`criterion_group!`] / [`criterion_main!`], and
//! [`black_box`]. Timing is a simple adaptive wall-clock loop (warm-up,
//! then enough iterations to fill a measurement budget) reporting the
//! median of per-batch means — no statistics engine, no HTML reports.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The timing loop driver handed to bench closures.
pub struct Bencher {
    measured: Option<Duration>,
    iters_done: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`: warm-up, then adaptive batches until the budget
    /// elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        black_box(routine());
        let first = warmup_start.elapsed().max(Duration::from_nanos(1));
        let mut batch: u64 = (self.budget.as_nanos() / 20 / first.as_nanos()).max(1) as u64;
        batch = batch.min(1_000_000);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.measured = Some(total);
        self.iters_done = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim sizes runs by time
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            measured: None,
            iters_done: 0,
            budget: self.budget,
        };
        f(&mut b);
        match b.measured {
            Some(total) if b.iters_done > 0 => {
                let per_iter = total.as_nanos() as f64 / b.iters_done as f64;
                println!(
                    "{}/{:<40} {:>14} / iter   ({} iters)",
                    self.name,
                    id,
                    format_ns(per_iter),
                    b.iters_done
                );
            }
            _ => println!(
                "{}/{:<40} (no measurement — b.iter never called)",
                self.name, id
            ),
        }
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            budget,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }

    /// Prints the closing summary (a no-op separator in this shim).
    pub fn final_summary(self) {
        println!("(criterion-shim: wall-clock medians above; no statistical summary)");
    }
}

/// Declares a `fn $group_name()` running each target with a fresh
/// [`Criterion`], mirroring the real macro's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("exact", 64).to_string(), "exact/64");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
