//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces, so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No serialization
//! machinery exists — the workspace never calls it (CSV output is
//! hand-rolled in `polystyrene-sim`'s report module).

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Deserializer-side namespace, for `serde::de::DeserializeOwned` paths.
pub mod de {
    pub use super::DeserializeOwned;
}
