//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! the unbounded MPSC channel, re-exported from `std::sync::mpsc` under
//! crossbeam's names. Only the multi-producer/single-consumer subset is
//! provided — each runtime node owns its receiver exclusively, so the
//! missing multi-consumer cloning is never exercised.

/// Channel types under crossbeam's module layout.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// The receiving half. `std`'s receiver under crossbeam's name.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
