//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! the unbounded MPSC channel, wrapping `std::sync::mpsc` under
//! crossbeam's names. Only the multi-producer/single-consumer subset is
//! provided — each runtime node owns its receiver exclusively, so the
//! missing multi-consumer cloning is never exercised.
//!
//! Unlike a bare re-export of `std`'s types, the [`channel::Sender`]
//! here mirrors crossbeam's [`channel::Sender::is_disconnected`]: the
//! receiver flips a shared flag when it drops, so a sender can observe
//! that its counterpart is gone *without* consuming a message. The
//! runtime's registry relies on this to report crash-stop delivery
//! failures consistently on paths that never perform the actual send
//! (injected transit loss).

/// Channel types under crossbeam's module layout.
pub mod channel {
    use std::sync::atomic::{AtomicBool, Ordering};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    /// The sending half: `std`'s sender plus a receiver-liveness flag.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
        receiver_alive: Arc<AtomicBool>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
                receiver_alive: Arc::clone(&self.receiver_alive),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if !self.receiver_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            self.inner.send(value)
        }

        /// Whether the channel's receiver has been dropped (crossbeam's
        /// `Sender::is_disconnected`). A `true` answer is final: a
        /// dropped receiver never comes back.
        pub fn is_disconnected(&self) -> bool {
            !self.receiver_alive.load(Ordering::Acquire)
        }
    }

    /// The receiving half. Dropping it flips the senders' liveness flag.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        alive: Arc<AtomicBool>,
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.alive.store(false, Ordering::Release);
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let alive = Arc::new(AtomicBool::new(true));
        (
            Sender {
                inner: tx,
                receiver_alive: Arc::clone(&alive),
            },
            Receiver { inner: rx, alive },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn sender_observes_receiver_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        assert!(!tx.is_disconnected());
        assert!(!tx2.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected(), "drop must flip the shared flag");
        assert!(tx2.is_disconnected(), "clones share the flag");
        assert_eq!(tx.send(1), Err(SendError(1)));
    }
}
