//! Offline mini-rayon.
//!
//! No crates.io access is available in this build environment, so this
//! shim provides the `par_iter`/`par_iter_mut` subset of rayon's API the
//! simulation engine uses, implemented with `std::thread::scope` — the
//! parallelism is real, not a sequential fallback. Work is split into one
//! contiguous chunk per available core; results are reassembled in input
//! order, so `map().collect()` is order-stable and deterministic.
//!
//! Small inputs (fewer than [`PARALLEL_THRESHOLD`] items) run inline on
//! the calling thread: spawning threads for a 64-node simulation costs
//! more than it saves.

use std::num::NonZeroUsize;

/// Below this many items, adapters run sequentially on the caller.
pub const PARALLEL_THRESHOLD: usize = 1024;

/// Number of worker threads used for parallel fan-out.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn chunk_len(total: usize, workers: usize) -> usize {
    total.div_ceil(workers.max(1))
}

/// Parallel map over a slice, preserving input order.
fn par_map_slice<'a, T: Sync, U: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> U + Sync)) -> Vec<U> {
    let workers = current_num_threads();
    if items.len() < PARALLEL_THRESHOLD || workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = chunk_len(items.len(), workers);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out
}

/// Parallel iterator adapters.
pub mod iter {
    use super::par_map_slice;

    /// Conversion into a borrowing parallel iterator (`.par_iter()`).
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed item type.
        type Item: 'a;
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrowing parallel iterator over `&self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Conversion into a mutably borrowing parallel iterator
    /// (`.par_iter_mut()`).
    pub trait IntoParallelRefMutIterator<'a> {
        /// The mutably borrowed item type.
        type Item: 'a;
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Mutably borrowing parallel iterator over `&mut self`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    /// The operations shared by this shim's parallel iterators.
    ///
    /// A deliberately concrete design: each adapter materializes its
    /// results eagerly, which is all the engine needs.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item;

        /// Applies `f` to every element in parallel, preserving order.
        fn map<U: Send, F>(self, f: F) -> MapResults<U>
        where
            F: Fn(Self::Item) -> U + Sync;

        /// Runs `f` on every element in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send;
    }

    /// Borrowing parallel iterator over a slice.
    pub struct SliceParIter<'a, T>(&'a [T]);

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceParIter<'a, T>;
        fn par_iter(&'a self) -> SliceParIter<'a, T> {
            SliceParIter(self)
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceParIter<'a, T>;
        fn par_iter(&'a self) -> SliceParIter<'a, T> {
            SliceParIter(self.as_slice())
        }
    }

    impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
        type Item = &'a T;

        fn map<U: Send, F>(self, f: F) -> MapResults<U>
        where
            F: Fn(&'a T) -> U + Sync,
        {
            MapResults(par_map_slice(self.0, &f))
        }

        fn for_each<F>(self, f: F)
        where
            F: Fn(&'a T) + Sync + Send,
        {
            par_map_slice(self.0, &|t: &'a T| f(t));
        }
    }

    /// Mutably borrowing parallel iterator over a slice.
    pub struct SliceParIterMut<'a, T>(&'a mut [T]);

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = SliceParIterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> SliceParIterMut<'a, T> {
            SliceParIterMut(self)
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = SliceParIterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> SliceParIterMut<'a, T> {
            SliceParIterMut(self.as_mut_slice())
        }
    }

    impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
        type Item = &'a mut T;

        fn map<U: Send, F>(self, f: F) -> MapResults<U>
        where
            F: Fn(&'a mut T) -> U + Sync,
        {
            // Mutable chunked map: collect per chunk, reassemble in order.
            let workers = super::current_num_threads();
            let items = self.0;
            if items.len() < super::PARALLEL_THRESHOLD || workers <= 1 {
                return MapResults(items.iter_mut().map(f).collect());
            }
            let chunk = super::chunk_len(items.len(), workers);
            let mut out: Vec<U> = Vec::with_capacity(items.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = items
                    .chunks_mut(chunk)
                    .map(|part| {
                        let f = &f;
                        scope.spawn(move || part.iter_mut().map(f).collect::<Vec<U>>())
                    })
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("rayon-shim worker panicked"));
                }
            });
            MapResults(out)
        }

        fn for_each<F>(self, f: F)
        where
            F: Fn(&'a mut T) + Sync + Send,
        {
            par_for_each_mut_erased(self.0, f);
        }
    }

    fn par_for_each_mut_erased<'a, T: Send, F>(items: &'a mut [T], f: F)
    where
        F: Fn(&'a mut T) + Sync + Send,
    {
        let workers = super::current_num_threads();
        if items.len() < super::PARALLEL_THRESHOLD || workers <= 1 {
            for item in items.iter_mut() {
                f(item);
            }
            return;
        }
        let chunk = super::chunk_len(items.len(), workers);
        std::thread::scope(|scope| {
            for part in items.chunks_mut(chunk) {
                let f = &f;
                scope.spawn(move || {
                    for item in part.iter_mut() {
                        f(item);
                    }
                });
            }
        });
    }

    /// Eagerly materialized results of a parallel `map`.
    pub struct MapResults<U>(Vec<U>);

    impl<U> MapResults<U> {
        /// Collects the mapped values.
        pub fn collect<C: FromIterator<U>>(self) -> C {
            self.0.into_iter().collect()
        }

        /// Collects the mapped values into `target`, reusing its
        /// allocation (mirrors rayon's
        /// `IndexedParallelIterator::collect_into_vec`, so swapping the
        /// shim for the registry crate is still a one-line pin change).
        pub fn collect_into_vec(self, target: &mut Vec<U>) {
            target.clear();
            target.extend(self.0);
        }

        /// Sums the mapped values.
        pub fn sum<S: std::iter::Sum<U>>(self) -> S {
            self.0.into_iter().sum()
        }

        /// Folds sequentially over the (parallel-computed) values.
        ///
        /// Unlike real rayon this takes a plain init value, because the
        /// reduction itself runs on one thread.
        pub fn reduce<F>(self, identity: impl Fn() -> U, op: F) -> U
        where
            F: Fn(U, U) -> U,
        {
            self.0.into_iter().fold(identity(), op)
        }
    }
}

/// `use rayon::prelude::*` — the canonical import.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order_above_threshold() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == i as u64 * 2));
    }

    #[test]
    fn map_sum_matches_sequential() {
        let v: Vec<u64> = (0..50_000).collect();
        let par: u64 = v.par_iter().map(|x| x + 1).sum();
        let seq: u64 = v.iter().map(|x| x + 1).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn for_each_mut_touches_every_element() {
        let mut v: Vec<u64> = vec![0; 30_000];
        v.par_iter_mut().for_each(|x| *x += 7);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn small_inputs_run_inline() {
        let mut v: Vec<u64> = (0..8).collect();
        v.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(v, vec![0, 3, 6, 9, 12, 15, 18, 21]);
        let s: u64 = v.par_iter().map(|x| *x).sum();
        assert_eq!(s, 84);
    }
}
