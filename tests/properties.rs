//! Cross-crate property-based tests: system invariants that must hold for
//! any workload, not just the paper's scenarios.

use polystyrene_repro::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Data points are conserved absent failures: whatever the seed and
    /// torus size, after any number of rounds every original point has
    /// exactly one primary holder.
    #[test]
    fn no_failure_no_point_loss_no_duplication(
        seed in 0u64..1000,
        cols in 4usize..10,
        rows in 3usize..8,
        rounds in 1u32..12,
    ) {
        let mut cfg = EngineConfig::default();
        cfg.area = (cols * rows) as f64;
        cfg.seed = seed;
        cfg.tman.view_cap = 20;
        cfg.tman.m = 8;
        let mut engine = Engine::new(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            cfg,
        );
        engine.run(rounds);
        let mut holders: HashMap<u64, usize> = HashMap::new();
        for id in engine.alive_ids() {
            for g in &engine.poly_state(id).unwrap().guests {
                *holders.entry(g.id.as_u64()).or_default() += 1;
            }
        }
        for i in 0..(cols * rows) as u64 {
            prop_assert_eq!(
                holders.get(&i).copied().unwrap_or(0),
                1,
                "point {} has {} holders",
                i,
                holders.get(&i).copied().unwrap_or(0)
            );
        }
    }

    /// After an arbitrary regional failure, surviving points are never
    /// duplicated beyond transient copies, and the surviving fraction is
    /// at least the per-point backup coverage bound.
    #[test]
    fn failure_preserves_uniqueness_eventually(
        seed in 0u64..500,
        cut in 2usize..6,
    ) {
        let cols = 8usize;
        let rows = 4usize;
        let mut cfg = EngineConfig::default();
        cfg.area = (cols * rows) as f64;
        cfg.seed = seed;
        cfg.tman.view_cap = 20;
        cfg.tman.m = 8;
        let mut engine = Engine::new(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            cfg,
        );
        engine.run(10);
        let cut_x = cut as f64;
        engine.fail_original_region(move |p: &[f64; 2]| p[0] >= cut_x);
        engine.run(20);
        // Eventually: every surviving point has exactly one holder.
        let mut holders: HashMap<u64, usize> = HashMap::new();
        for id in engine.alive_ids() {
            for g in &engine.poly_state(id).unwrap().guests {
                *holders.entry(g.id.as_u64()).or_default() += 1;
            }
        }
        let m = engine.compute_metrics();
        let surviving = holders.len() as f64 / (cols * rows) as f64;
        prop_assert!((surviving - m.surviving_points).abs() < 0.35);
        let duplicated = holders.values().filter(|&&c| c > 1).count();
        prop_assert!(
            duplicated * 10 <= holders.len(),
            "{} of {} surviving points still duplicated after 20 rounds",
            duplicated,
            holders.len()
        );
    }

    /// The reference homogeneity bound is monotone: more nodes over the
    /// same area always tightens it.
    #[test]
    fn reference_homogeneity_monotone(area in 1.0..10_000.0f64, n in 1usize..10_000) {
        prop_assert!(
            reference_homogeneity(area, n + 1) <= reference_homogeneity(area, n)
        );
    }

    /// Required replication achieves its survival target for the paper's
    /// failure model across the whole parameter plane.
    #[test]
    fn replication_math_consistency(pf in 0.05..0.95f64, ps in 0.1..0.99f64) {
        let k = required_replication(pf, ps);
        prop_assert!(survival_probability(pf, k) >= ps - 1e-12);
    }
}
