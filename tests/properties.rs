//! Cross-crate property-based tests: system invariants that must hold for
//! any workload, not just the paper's scenarios.

use polystyrene_repro::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Data points are conserved absent failures: whatever the seed and
    /// torus size, after any number of rounds every original point has
    /// exactly one primary holder.
    #[test]
    fn no_failure_no_point_loss_no_duplication(
        seed in 0u64..1000,
        cols in 4usize..10,
        rows in 3usize..8,
        rounds in 1u32..12,
    ) {
        let mut cfg = EngineConfig::default();
        cfg.area = (cols * rows) as f64;
        cfg.seed = seed;
        cfg.tman.view_cap = 20;
        cfg.tman.m = 8;
        let mut engine = Engine::new(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            cfg,
        );
        engine.run(rounds);
        let mut holders: HashMap<u64, usize> = HashMap::new();
        for id in engine.alive_ids() {
            for g in &engine.poly_state(id).unwrap().guests {
                *holders.entry(g.id.as_u64()).or_default() += 1;
            }
        }
        for i in 0..(cols * rows) as u64 {
            prop_assert_eq!(
                holders.get(&i).copied().unwrap_or(0),
                1,
                "point {} has {} holders",
                i,
                holders.get(&i).copied().unwrap_or(0)
            );
        }
    }

    /// After an arbitrary regional failure, surviving points are never
    /// duplicated beyond transient copies, and the surviving fraction is
    /// at least the per-point backup coverage bound.
    #[test]
    fn failure_preserves_uniqueness_eventually(
        seed in 0u64..500,
        cut in 2usize..6,
    ) {
        let cols = 8usize;
        let rows = 4usize;
        let mut cfg = EngineConfig::default();
        cfg.area = (cols * rows) as f64;
        cfg.seed = seed;
        cfg.tman.view_cap = 20;
        cfg.tman.m = 8;
        let mut engine = Engine::new(
            Torus2::new(cols as f64, rows as f64),
            shapes::torus_grid(cols, rows, 1.0),
            cfg,
        );
        engine.run(10);
        let cut_x = cut as f64;
        engine.fail_original_region(move |p: &[f64; 2]| p[0] >= cut_x);
        engine.run(20);
        // Eventually: every surviving point has exactly one holder.
        let mut holders: HashMap<u64, usize> = HashMap::new();
        for id in engine.alive_ids() {
            for g in &engine.poly_state(id).unwrap().guests {
                *holders.entry(g.id.as_u64()).or_default() += 1;
            }
        }
        let m = engine.compute_metrics();
        let surviving = holders.len() as f64 / (cols * rows) as f64;
        prop_assert!((surviving - m.surviving_points).abs() < 0.35);
        let duplicated = holders.values().filter(|&&c| c > 1).count();
        prop_assert!(
            duplicated * 10 <= holders.len(),
            "{} of {} surviving points still duplicated after 20 rounds",
            duplicated,
            holders.len()
        );
    }

    /// The reference homogeneity bound is monotone: more nodes over the
    /// same area always tightens it.
    #[test]
    fn reference_homogeneity_monotone(area in 1.0..10_000.0f64, n in 1usize..10_000) {
        prop_assert!(
            reference_homogeneity(area, n + 1) <= reference_homogeneity(area, n)
        );
    }

    /// Required replication achieves its survival target for the paper's
    /// failure model across the whole parameter plane.
    #[test]
    fn replication_math_consistency(pf in 0.05..0.95f64, ps in 0.1..0.99f64) {
        let k = required_replication(pf, ps);
        prop_assert!(survival_probability(pf, k) >= ps - 1e-12);
    }

    /// A migration exchange conserves data points exactly: whatever the
    /// guest sets, positions, split strategy and seed, the union of point
    /// ids after `migrate_exchange` equals the union before — nothing
    /// lost, nothing duplicated, nothing invented (Algorithm 3 is a pure
    /// repartition).
    #[test]
    fn migrate_exchange_conserves_guests(
        seed in 0u64..1000,
        np in 0usize..12,
        nq in 0usize..12,
        split_pick in 0usize..3,
        px in 0.0..16.0f64,
        qx in 0.0..16.0f64,
    ) {
        use rand::SeedableRng;
        let space = Torus2::new(16.0, 8.0);
        let split = SplitStrategy::ALL[split_pick % SplitStrategy::ALL.len()];
        let cfg = PolystyreneConfig::builder().replication(3).split(split).build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let point = |i: u64| DataPoint::new(
            PointId::new(i),
            [(i as f64 * 3.7) % 16.0, (i as f64 * 1.3) % 8.0],
        );
        let mut p = PolyState::empty_at([px, 1.0]);
        p.absorb_guests((0..np as u64).map(point).collect());
        let mut q = PolyState::empty_at([qx, 6.0]);
        q.absorb_guests((np as u64..(np + nq) as u64).map(point).collect());

        let before: std::collections::BTreeSet<u64> = p
            .guests
            .iter()
            .chain(q.guests.iter())
            .map(|g| g.id.as_u64())
            .collect();
        prop_assert_eq!(before.len(), np + nq, "test setup must not duplicate ids");

        let outcome = migrate_exchange(&space, &cfg, &mut p, &mut q, &mut rng);

        prop_assert_eq!(
            p.guests.len() + q.guests.len(),
            np + nq,
            "guest count changed: {} + {} != {} (outcome {:?})",
            p.guests.len(), q.guests.len(), np + nq, outcome
        );
        let after: std::collections::BTreeSet<u64> = p
            .guests
            .iter()
            .chain(q.guests.iter())
            .map(|g| g.id.as_u64())
            .collect();
        prop_assert_eq!(after, before, "point ids not conserved");
    }

    /// Recovery never resurrects a point twice: reactivated ghosts dedup
    /// against guests already hosted, the consumed ghost entries are gone,
    /// and an immediately repeated pass reactivates nothing.
    #[test]
    fn recovery_never_resurrects_twice(
        n_origins in 1usize..6,
        pts_per_origin in 1usize..5,
        overlap in 0u64..8,
    ) {
        use polystyrene::recovery::recover;
        use polystyrene_membership::NodeId;

        let point = |i: u64| DataPoint::new(PointId::new(i), [i as f64, 0.0]);
        let mut s = PolyState::with_initial_point(point(0));
        // Ghost entries deliberately overlap each other and the hosted
        // guest: ids are drawn from a small window starting at `overlap`.
        for origin in 0..n_origins as u64 {
            let pts: Vec<_> = (0..pts_per_origin as u64)
                .map(|j| point((overlap + origin * 2 + j) % 10))
                .collect();
            s.store_ghosts(NodeId::new(origin + 100), pts);
        }
        let all_ghost_ids: std::collections::BTreeSet<u64> = s
            .ghosts
            .values()
            .flatten()
            .map(|g| g.id.as_u64())
            .collect();

        let first = recover(&mut s, |_| true);
        prop_assert!(s.ghosts.is_empty(), "consumed ghost entries must be dropped");
        // No duplicates among guests.
        let mut ids: Vec<u64> = s.guests.iter().map(|g| g.id.as_u64()).collect();
        ids.sort();
        let unique = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), unique, "a point was resurrected twice");
        // Everything that existed as a ghost is now hosted (union with the
        // original guest), and the reactivation count matches the dedup.
        let hosted: std::collections::BTreeSet<u64> =
            s.guests.iter().map(|g| g.id.as_u64()).collect();
        for id in &all_ghost_ids {
            prop_assert!(hosted.contains(id), "ghosted point {} vanished", id);
        }
        // Initially only point 0 was hosted, so the reactivation count is
        // exactly the newly hosted points.
        prop_assert_eq!(
            first.reactivated_points,
            hosted.len() - 1,
            "reactivation count must equal newly hosted points"
        );
        // Idempotence: a second pass finds nothing to resurrect.
        let second = recover(&mut s, |_| true);
        prop_assert!(second.is_empty());
        prop_assert_eq!(second.reactivated_points, 0);
        prop_assert_eq!(s.guests.len(), hosted.len());
    }
}
