//! Cross-substrate equivalence: one [`Scenario`] value — the paper's
//! three phases plus a continuous churn window — executes on **all
//! four** execution substrates through the one `Substrate` seam and the
//! one `run_experiment` driver, with identical population arithmetic,
//! and every substrate recovers the shape.
//!
//! This used to be three hand-wired test files (engine+cluster here,
//! netsim in `crates/netsim/tests/equivalence.rs`, TCP in
//! `crates/transport/tests/equivalence.rs`), each with its own driving
//! loop. The unified experiment plane makes it one parameterized script
//! through one code path — which *is* the paper's core claim
//! (conf_icdcs_BougetKKT14): the self-organizing shape survives the
//! same failure scenarios regardless of how messages move.

use polystyrene_repro::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const COLS: usize = 8;
const ROWS: usize = 4;

/// Converge 20 rounds → kill the right half-torus → 2 rounds of 5% churn
/// → re-inject 16 fresh nodes → observe to round 55.
fn shared_scenario() -> Scenario<[f64; 2]> {
    Scenario::new(55)
        .at(
            20,
            ScenarioEvent::FailOriginalRegion(Arc::new(|p: &[f64; 2]| p[0] >= COLS as f64 / 2.0)),
        )
        .at(
            25,
            ScenarioEvent::Churn {
                rate: 0.05,
                rounds: 2,
            },
        )
        .at(
            35,
            ScenarioEvent::Inject(shapes::torus_grid_offset(COLS / 2, ROWS, 1.0)),
        )
}

/// Population after the script: 32 founders − 16 (half torus) − 1 − 1
/// (5% churn of 16 then 15, rounded) + 16 injected.
const EXPECTED_FINAL_ALIVE: usize = 30;

fn lab_config() -> LabConfig {
    let mut cfg = LabConfig::default();
    cfg.area = (COLS * ROWS) as f64;
    cfg.seed = 11;
    cfg.tman.view_cap = 20;
    cfg.tman.m = 8;
    cfg.poly = PolystyreneConfig::builder().replication(4).build();
    // 8 ms leaves debug-build message handling headroom per round on a
    // loaded CI box for the wall-clock substrates.
    cfg.tick = Duration::from_millis(8);
    cfg
}

fn run_on(kind: SubstrateKind) -> ExperimentTrace {
    let mut substrate = build_substrate(
        kind,
        Torus2::new(COLS as f64, ROWS as f64),
        shapes::torus_grid(COLS, ROWS, 1.0),
        &lab_config(),
    );
    run_experiment(substrate.as_mut(), &shared_scenario())
}

fn assert_population_arithmetic(kind: SubstrateKind, alive: &[usize]) {
    assert_eq!(alive.len(), 55, "{kind}");
    assert_eq!(alive[19], 32, "{kind}: pre-failure population");
    assert_eq!(alive[20], 16, "{kind}: half torus down");
    assert_eq!(alive[26], 14, "{kind}: two churn rounds");
    assert_eq!(
        *alive.last().unwrap(),
        EXPECTED_FINAL_ALIVE,
        "{kind}: after re-injection"
    );
}

#[test]
fn deterministic_substrates_agree_exactly_and_recover() {
    // Engine and netsim share the script, the driver and (here) even
    // the recovery thresholds: the event kernel under an ideal link
    // collapses to round-synchronized delivery, so its population
    // arithmetic must match the engine's round by round. The kernel is
    // built concretely (same configuration the factory applies) so its
    // internal drop/in-flight counters stay checkable.
    let engine = run_on(SubstrateKind::Engine);
    let cfg = lab_config();
    let mut n = NetSimConfig::default();
    n.tman = cfg.tman;
    n.poly = cfg.poly;
    n.area = cfg.area;
    n.seed = cfg.seed;
    n.link = cfg.link;
    let mut sim = NetSim::new(
        Torus2::new(COLS as f64, ROWS as f64),
        shapes::torus_grid(COLS, ROWS, 1.0),
        n,
    );
    let netsim = run_experiment(&mut sim, &shared_scenario());
    // An ideal link drops nothing and leaves nothing in flight between
    // rounds — delivery is round-synchronized.
    assert!(sim.history().iter().all(|m| m.dropped_messages == 0));
    assert!(sim.history().iter().all(|m| m.in_flight == 0));
    assert_population_arithmetic(SubstrateKind::Engine, &engine.populations());
    assert_eq!(
        engine.populations(),
        netsim.populations(),
        "the two deterministic substrates disagree on who is alive after the same script"
    );
    for (kind, trace) in [
        (SubstrateKind::Engine, &engine),
        (SubstrateKind::Netsim, &netsim),
    ] {
        let last = trace.final_observation().unwrap();
        assert!(
            last.homogeneity < last.reference_homogeneity,
            "{kind} failed to reshape: {} vs reference {}",
            last.homogeneity,
            last.reference_homogeneity
        );
        assert!(
            last.surviving_points > 0.8,
            "{kind} lost too many points: {}",
            last.surviving_points
        );
    }
    // An ideal netsim link parks nothing between rounds.
    assert!(netsim.observations.iter().all(|o| o.parked_points == 0));
}

/// Shared assertions for the wall-clock substrates: identical
/// population arithmetic, looser quality thresholds (snapshots catch
/// points mid-migration), same qualitative claim — homogeneity returns
/// below threshold and the points survived the blast.
fn assert_live_recovery(kind: SubstrateKind, trace: &ExperimentTrace) {
    assert_population_arithmetic(kind, &trace.populations());
    let best_tail_homogeneity = trace.observations[40..]
        .iter()
        .map(|o| o.homogeneity)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_tail_homogeneity < 1.0,
        "{kind} failed to reshape: best tail homogeneity {best_tail_homogeneity}"
    );
    let last = trace.final_observation().unwrap();
    assert!(
        last.surviving_points > 0.6,
        "{kind} lost too many points: {}",
        last.surviving_points
    );
}

#[test]
fn cluster_runs_the_same_scenario_and_recovers() {
    assert_live_recovery(SubstrateKind::Cluster, &run_on(SubstrateKind::Cluster));
}

#[test]
fn tcp_runs_the_same_scenario_and_recovers() {
    // Every protocol message crosses a real loopback socket as framed
    // codec bytes — and the numbers must still match the engine's. The
    // deployment is built concretely (same configuration the factory
    // applies) so the socket frame counter stays checkable: a fabric
    // that short-circuited in-process would pass the population
    // arithmetic while moving zero bytes.
    let cfg = lab_config();
    let mut tcp_config = TcpConfig::default();
    tcp_config.runtime = cfg.runtime();
    let mut substrate = LiveSubstrate::new(
        TcpCluster::spawn(
            Torus2::new(COLS as f64, ROWS as f64),
            shapes::torus_grid(COLS, ROWS, 1.0),
            tcp_config,
        ),
        cfg.seed,
        cfg.round_timeout,
    );
    let trace = run_experiment(&mut substrate, &shared_scenario());
    assert_live_recovery(SubstrateKind::Tcp, &trace);
    assert!(
        substrate.cluster().sent_frames() > 1000,
        "a 55-round scenario must push real traffic through the sockets (saw {})",
        substrate.cluster().sent_frames()
    );
}
