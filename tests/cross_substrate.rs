//! Cross-substrate equivalence: one [`Scenario`] value — the paper's
//! three phases plus a continuous churn window — executes on **both**
//! execution substrates through the shared scenario driver, and both
//! recover the shape.
//!
//! The cycle engine and the threaded cluster now run the *same* sans-IO
//! `ProtocolNode` state machine and the *same* event-application code
//! path, so this is the end-to-end check that the two substrates agree
//! on what the script means: identical alive-population arithmetic
//! (failure, churn rounding, injection), shape recovery (homogeneity
//! back below threshold) and point conservation on both.

use polystyrene_repro::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const COLS: usize = 8;
const ROWS: usize = 4;

/// Converge 20 rounds → kill the right half-torus → 2 rounds of 5% churn
/// → re-inject 16 fresh nodes → observe to round 55.
fn shared_scenario() -> Scenario<[f64; 2]> {
    Scenario::new(55)
        .at(
            20,
            ScenarioEvent::FailOriginalRegion(Arc::new(|p: &[f64; 2]| p[0] >= COLS as f64 / 2.0)),
        )
        .at(
            25,
            ScenarioEvent::Churn {
                rate: 0.05,
                rounds: 2,
            },
        )
        .at(
            35,
            ScenarioEvent::Inject(shapes::torus_grid_offset(COLS / 2, ROWS, 1.0)),
        )
}

/// Population after the script: 32 founders − 16 (half torus) − 1 − 1
/// (5% churn of 16 then 15, rounded) + 16 injected.
const EXPECTED_FINAL_ALIVE: usize = 30;

#[test]
fn engine_runs_the_shared_scenario_and_recovers() {
    let scenario = shared_scenario();
    let mut cfg = EngineConfig::default();
    cfg.area = (COLS * ROWS) as f64;
    cfg.seed = 11;
    cfg.tman.view_cap = 20;
    cfg.tman.m = 8;
    let mut engine = Engine::new(
        Torus2::new(COLS as f64, ROWS as f64),
        shapes::torus_grid(COLS, ROWS, 1.0),
        cfg,
    );
    let metrics = run_scenario(&mut engine, &scenario);
    assert_eq!(metrics.len(), 55);
    assert_eq!(metrics[19].alive_nodes, 32, "pre-failure population");
    assert_eq!(metrics[20].alive_nodes, 16, "half torus down");
    assert_eq!(metrics[26].alive_nodes, 14, "two churn rounds");
    let last = metrics.last().unwrap();
    assert_eq!(last.alive_nodes, EXPECTED_FINAL_ALIVE);
    assert!(
        last.homogeneity < last.reference_homogeneity,
        "engine failed to reshape: {} vs reference {}",
        last.homogeneity,
        last.reference_homogeneity
    );
    assert!(
        last.surviving_points > 0.8,
        "engine lost too many points: {}",
        last.surviving_points
    );
}

#[test]
fn cluster_runs_the_same_scenario_and_recovers() {
    let scenario = shared_scenario();
    // 8 ms leaves debug-build message handling headroom per round on a
    // loaded CI box (see tests/runtime_cluster.rs).
    let mut config = RuntimeConfig::default();
    config.tick = Duration::from_millis(8);
    config.poly = PolystyreneConfig::builder().replication(4).build();
    let cluster = Cluster::spawn(
        Torus2::new(COLS as f64, ROWS as f64),
        shapes::torus_grid(COLS, ROWS, 1.0),
        config,
    );
    let observations = run_cluster_scenario(&cluster, &scenario, Duration::from_secs(10), 11);
    assert_eq!(observations.len(), 55);
    // The population arithmetic is identical to the engine's: the two
    // substrates share the event-application code path.
    assert_eq!(observations[19].alive_nodes, 32, "pre-failure population");
    assert_eq!(observations[20].alive_nodes, 16, "half torus down");
    assert_eq!(observations[26].alive_nodes, 14, "two churn rounds");
    let last = observations.last().unwrap();
    assert_eq!(last.alive_nodes, EXPECTED_FINAL_ALIVE);
    // Shape recovery: the wall-clock substrate is noisier than the cycle
    // engine (snapshots catch points mid-migration), so the thresholds
    // are looser but the qualitative claim is the same — homogeneity
    // returns below threshold and the points survived the blast.
    let best_tail_homogeneity = observations[40..]
        .iter()
        .map(|o| o.homogeneity)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_tail_homogeneity < 1.0,
        "cluster failed to reshape: best tail homogeneity {best_tail_homogeneity}"
    );
    assert!(
        last.surviving_points > 0.6,
        "cluster lost too many points: {}",
        last.surviving_points
    );
    cluster.shutdown();
}
