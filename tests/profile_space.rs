//! Polystyrene over a non-geometric data space: user profiles as item
//! sets under the Jaccard distance.
//!
//! The paper's system model allows data points to be "a list of items"
//! from "the power-set of items" (Sec. III-A) — the profile spaces of
//! gossip recommenders (Gossple, WhatsUp). Nothing in the stack assumes
//! coordinates: this test runs the full engine over `JaccardSpace` and
//! verifies clustering, catastrophic failure and recovery.

use polystyrene_repro::prelude::*;

/// Builds `communities` user communities of `per_community` profiles each.
/// Members of community `c` share the core items `{100c … 100c+7}` and
/// differ in a couple of personal items, so intra-community distance is
/// small and inter-community distance is ≈ 1.
fn profile_population(communities: usize, per_community: usize) -> Vec<ItemSet> {
    let mut out = Vec::new();
    for c in 0..communities {
        for m in 0..per_community {
            let mut profile: ItemSet = (0..8).map(|i| (c * 100 + i) as u32).collect();
            profile.insert((c * 100 + 50 + m) as u32); // personal taste
            out.push(profile);
        }
    }
    out
}

fn engine(communities: usize, per_community: usize, seed: u64) -> Engine<JaccardSpace> {
    let shape = profile_population(communities, per_community);
    let mut cfg = EngineConfig::default();
    // The Jaccard space has no meaningful area; keep reporting sane.
    cfg.area = 1.0;
    cfg.seed = seed;
    cfg.tman.view_cap = 20;
    cfg.tman.m = 8;
    cfg.poly = PolystyreneConfig::builder().replication(4).build();
    Engine::new(JaccardSpace, shape, cfg)
}

#[test]
fn profiles_cluster_by_community() {
    let (communities, per) = (6, 12);
    let mut e = engine(communities, per, 3);
    e.run(15);
    // Each node's closest topology neighbors should mostly come from its
    // own community (ids are laid out community-contiguous).
    let mut same = 0usize;
    let mut total = 0usize;
    for id in e.alive_ids() {
        let my_community = id.index() / per;
        for n in e.neighbors_of(id, 4) {
            total += 1;
            if n.index() / per == my_community {
                same += 1;
            }
        }
    }
    let fraction = same as f64 / total as f64;
    assert!(
        fraction > 0.9,
        "only {fraction:.2} of neighbors are community-local"
    );
}

#[test]
fn community_outage_is_absorbed() {
    let (communities, per) = (6, 12);
    let mut e = engine(communities, per, 4);
    e.run(15);
    assert!(e.compute_metrics().homogeneity < 1e-9);

    // Communities 0-2 were hosted in the datacenter that just died
    // (ids are community-contiguous, so this is a correlated failure in
    // profile space too).
    let per_u64 = per as u64;
    let cut = 3 * per_u64;
    let victims: Vec<NodeId> = (0..cut).map(NodeId::new).collect();
    for v in victims {
        e.crash(v);
    }
    assert_eq!(e.alive_count(), 36);
    e.run(20);
    let m = e.compute_metrics();
    // Most profiles survived via replication…
    assert!(
        m.surviving_points > 0.9,
        "profiles lost: {}",
        m.surviving_points
    );
    // …and their nearest holders are close in Jaccard distance (the
    // maximum possible distance is 1.0; random assignment would sit
    // near 1).
    assert!(
        m.homogeneity < 0.45,
        "profile shape not preserved: homogeneity {}",
        m.homogeneity
    );
}
