//! Integration tests of the threaded deployment: the full stack over
//! real threads, channels and heartbeat failure detection.

use polystyrene_repro::prelude::*;
use std::time::Duration;

fn config(k: usize) -> RuntimeConfig {
    let mut c = RuntimeConfig::default();
    // 8 ms leaves debug-build message handling comfortable headroom per
    // round even on a loaded CI box; at 3 ms the protocol clock stretches
    // under contention and wall-clock assertions below get flaky.
    c.tick = Duration::from_millis(8);
    c.poly = PolystyreneConfig::builder().replication(k).build();
    c
}

/// Best homogeneity observed until it drops below `threshold` or
/// `timeout` elapses.
///
/// A single wall-clock snapshot of an asynchronous cluster can catch
/// data points mid-migration (cloned into a request, not yet placed by
/// the reply), and exactly when convergence completes depends on
/// scheduling. The meaningful steady-state property is that the cluster
/// *settles* within a bounded window, not the value at one instant.
fn settled_homogeneity(cluster: &Cluster<Torus2>, threshold: f64, timeout: Duration) -> f64 {
    let deadline = std::time::Instant::now() + timeout;
    let mut best = f64::INFINITY;
    loop {
        best = best.min(cluster.observe().homogeneity);
        if best < threshold || std::time::Instant::now() > deadline {
            return best;
        }
        std::thread::sleep(Duration::from_millis(6));
    }
}

#[test]
fn full_lifecycle_failover_and_reinjection() {
    let (cols, rows) = (8, 4);
    let cluster = Cluster::spawn(
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        config(4),
    );
    cluster.await_ticks(15, Duration::from_secs(15));
    let steady = cluster.observe();
    assert_eq!(steady.alive_nodes, 32);
    let settled = settled_homogeneity(&cluster, 0.2, Duration::from_secs(8));
    assert!(settled < 0.2, "homogeneity {settled}");
    assert!(
        steady.points_per_node > 3.5,
        "replication lagging: {}",
        steady.points_per_node
    );

    // Catastrophe: the right half dies mid-flight.
    let killed = cluster.kill_region(shapes::in_right_half(cols as f64));
    assert_eq!(killed.len(), 16);
    cluster.run_for(Duration::from_millis(500));
    let healed = cluster.observe();
    assert_eq!(healed.alive_nodes, 16);
    assert!(
        healed.surviving_points > 0.80,
        "lost too many points: {}",
        healed.surviving_points
    );
    assert!(
        healed.homogeneity < 2.0,
        "homogeneity {}",
        healed.homogeneity
    );

    // Re-provision: fresh empty nodes join and absorb load.
    for pos in shapes::torus_grid_offset(cols / 2, rows, 1.0) {
        cluster.inject(pos);
    }
    cluster.run_for(Duration::from_millis(500));
    let grown = cluster.observe();
    assert_eq!(grown.alive_nodes, 32);
    assert!(
        grown.homogeneity <= healed.homogeneity + 0.3,
        "injection degraded coverage: {} vs {}",
        grown.homogeneity,
        healed.homogeneity
    );
    cluster.shutdown();
}

#[test]
fn heartbeat_detector_triggers_recovery_without_oracle() {
    // Unlike the simulator there is no ground-truth detector here: ghosts
    // must be reactivated purely from missed heartbeats.
    let cluster = Cluster::spawn(
        Torus2::new(6.0, 4.0),
        shapes::torus_grid(6, 4, 1.0),
        config(6),
    );
    cluster.await_ticks(12, Duration::from_secs(15));
    cluster.kill(NodeId::new(0));
    cluster.kill(NodeId::new(1));
    cluster.run_for(Duration::from_millis(400));
    let obs = cluster.observe();
    assert_eq!(obs.alive_nodes, 22);
    // Points 0 and 1 must have been recovered by some backup holder.
    assert!(
        obs.surviving_points > 0.9,
        "recovery never happened: {}",
        obs.surviving_points
    );
    cluster.shutdown();
}

#[test]
fn sequential_kills_do_not_wedge_the_cluster() {
    let cluster = Cluster::spawn(
        Torus2::new(6.0, 4.0),
        shapes::torus_grid(6, 4, 1.0),
        config(3),
    );
    cluster.await_ticks(8, Duration::from_secs(15));
    for id in 0..8 {
        cluster.kill(NodeId::new(id));
        cluster.run_for(Duration::from_millis(40));
    }
    let obs = cluster.observe();
    assert_eq!(obs.alive_nodes, 16);
    // Cluster still making progress.
    let before = cluster.observe().ticks;
    cluster.run_for(Duration::from_millis(200));
    assert!(cluster.observe().ticks > before, "cluster wedged");
    cluster.shutdown();
}
