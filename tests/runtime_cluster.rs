//! Integration tests of the threaded deployment: the full stack over
//! real threads, channels and heartbeat failure detection.

use polystyrene_repro::prelude::*;
use std::time::Duration;

fn config(k: usize) -> RuntimeConfig {
    let mut c = RuntimeConfig::default();
    c.tick = Duration::from_millis(3);
    c.poly = PolystyreneConfig::builder().replication(k).build();
    c
}

#[test]
fn full_lifecycle_failover_and_reinjection() {
    let (cols, rows) = (8, 4);
    let cluster = Cluster::spawn(
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        config(4),
    );
    cluster.await_ticks(15, Duration::from_secs(15));
    let steady = cluster.observe();
    assert_eq!(steady.alive_nodes, 32);
    assert!(steady.homogeneity < 0.2, "homogeneity {}", steady.homogeneity);
    assert!(steady.points_per_node > 3.5, "replication lagging: {}", steady.points_per_node);

    // Catastrophe: the right half dies mid-flight.
    let killed = cluster.kill_region(shapes::in_right_half(cols as f64));
    assert_eq!(killed.len(), 16);
    cluster.run_for(Duration::from_millis(500));
    let healed = cluster.observe();
    assert_eq!(healed.alive_nodes, 16);
    assert!(
        healed.surviving_points > 0.80,
        "lost too many points: {}",
        healed.surviving_points
    );
    assert!(healed.homogeneity < 2.0, "homogeneity {}", healed.homogeneity);

    // Re-provision: fresh empty nodes join and absorb load.
    for pos in shapes::torus_grid_offset(cols / 2, rows, 1.0) {
        cluster.inject(pos);
    }
    cluster.run_for(Duration::from_millis(500));
    let grown = cluster.observe();
    assert_eq!(grown.alive_nodes, 32);
    assert!(
        grown.homogeneity <= healed.homogeneity + 0.3,
        "injection degraded coverage: {} vs {}",
        grown.homogeneity,
        healed.homogeneity
    );
    cluster.shutdown();
}

#[test]
fn heartbeat_detector_triggers_recovery_without_oracle() {
    // Unlike the simulator there is no ground-truth detector here: ghosts
    // must be reactivated purely from missed heartbeats.
    let cluster = Cluster::spawn(
        Torus2::new(6.0, 4.0),
        shapes::torus_grid(6, 4, 1.0),
        config(6),
    );
    cluster.await_ticks(12, Duration::from_secs(15));
    cluster.kill(NodeId::new(0));
    cluster.kill(NodeId::new(1));
    cluster.run_for(Duration::from_millis(400));
    let obs = cluster.observe();
    assert_eq!(obs.alive_nodes, 22);
    // Points 0 and 1 must have been recovered by some backup holder.
    assert!(
        obs.surviving_points > 0.9,
        "recovery never happened: {}",
        obs.surviving_points
    );
    cluster.shutdown();
}

#[test]
fn sequential_kills_do_not_wedge_the_cluster() {
    let cluster = Cluster::spawn(
        Torus2::new(6.0, 4.0),
        shapes::torus_grid(6, 4, 1.0),
        config(3),
    );
    cluster.await_ticks(8, Duration::from_secs(15));
    for id in 0..8 {
        cluster.kill(NodeId::new(id));
        cluster.run_for(Duration::from_millis(40));
    }
    let obs = cluster.observe();
    assert_eq!(obs.alive_nodes, 16);
    // Cluster still making progress.
    let before = cluster.observe().min_ticks;
    cluster.run_for(Duration::from_millis(200));
    assert!(cluster.observe().min_ticks > before, "cluster wedged");
    cluster.shutdown();
}
