//! End-to-end integration test of the paper's three-phase evaluation
//! scenario (Sec. IV-A), asserting the qualitative claims of Figs. 6-7
//! and Table II on a reduced torus.

use polystyrene_repro::prelude::*;

fn run_script(engine: &mut Engine<Torus2>, paper: &PaperScenario) -> Vec<RoundMetrics> {
    run_experiment(engine, &paper.script());
    engine.history().to_vec()
}

fn engine_for(paper: &PaperScenario, k: usize, seed: u64) -> Engine<Torus2> {
    let (w, h) = paper.extents();
    let mut cfg = EngineConfig::default();
    cfg.area = paper.area();
    cfg.seed = seed;
    cfg.poly = PolystyreneConfig::builder().replication(k).build();
    Engine::new(Torus2::new(w, h), paper.shape(), cfg)
}

fn paper() -> PaperScenario {
    PaperScenario {
        cols: 24,
        rows: 12,
        step: 1.0,
        failure_round: 15,
        inject_round: Some(50),
        total_rounds: 90,
    }
}

#[test]
fn three_phases_follow_the_paper() {
    let paper = paper();
    let mut engine = engine_for(&paper, 4, 11);
    let metrics = run_script(&mut engine, &paper);

    // Phase 1: convergence. Homogeneity 0 (every node hosts its point),
    // proximity near the grid optimum (4 neighbors at distance 1).
    let converged = &metrics[paper.failure_round as usize - 1];
    assert_eq!(converged.alive_nodes, 288);
    assert!(converged.homogeneity < 1e-9);
    assert!(
        converged.proximity < 1.3,
        "proximity {}",
        converged.proximity
    );
    // Steady-state memory: 1 + K points per node (paper Fig. 7a).
    assert!((converged.points_per_node - 5.0).abs() < 0.5);

    // Phase 2: catastrophic failure, then reshaping within ~10 rounds.
    let at_failure = &metrics[paper.failure_round as usize + 1];
    assert_eq!(at_failure.alive_nodes, 144);
    let t = reshaping_time(&metrics, paper.failure_round).expect("never reshaped");
    assert!(t <= 15, "reshaping took {t} rounds");
    // Reliability ≈ 1 − 0.5^(K+1) = 96.9 % for K = 4 (paper Table II).
    assert!(at_failure.surviving_points > 0.90);

    // The replica spike of Fig. 7a: stored points jump right after the
    // failure (~2×(1+K)) and then decay as migration deduplicates.
    let spike = metrics[paper.failure_round as usize + 2].points_per_node;
    let settled = metrics[paper.inject_round.unwrap() as usize - 1].points_per_node;
    assert!(
        spike > settled,
        "no dedup decay: spike {spike}, settled {settled}"
    );

    // Phase 3: reinjection brings homogeneity far below the half-
    // population plateau (paper: 0.035 vs 0.61).
    let last = metrics.last().unwrap();
    assert_eq!(last.alive_nodes, 288);
    let pre_inject = metrics[paper.inject_round.unwrap() as usize - 1].homogeneity;
    assert!(
        last.homogeneity < pre_inject / 2.0,
        "reinjection did not densify coverage: {} vs {}",
        last.homogeneity,
        pre_inject
    );
}

#[test]
fn tman_baseline_loses_the_shape_forever() {
    let paper = paper();
    let mut engine = engine_for(&paper, 4, 13);
    engine.disable_polystyrene();
    let metrics = run_script(&mut engine, &paper);

    // The baseline never reshapes…
    assert_eq!(reshaping_time(&metrics, paper.failure_round), None);
    // …loses about half the data points…
    let after = &metrics[paper.failure_round as usize + 1];
    assert!(after.surviving_points < 0.55);
    // …but still heals its *links* (the paper's Fig. 1c observation).
    let last = metrics.last().unwrap();
    assert!(last.proximity < 2.0, "T-Man should still fix proximity");
    // Homogeneity stays flat and high from failure to the end of phase 2.
    let plateau_start = metrics[paper.failure_round as usize + 5].homogeneity;
    let plateau_end = metrics[paper.inject_round.unwrap() as usize - 1].homogeneity;
    assert!((plateau_start - plateau_end).abs() < 0.25);
    assert!(plateau_end > metrics.last().unwrap().reference_homogeneity);
}

#[test]
fn replication_factor_trades_speed_for_reliability() {
    // Paper Table II: higher K ⇒ slower reshaping but better reliability.
    let paper = PaperScenario::reshaping_only(24, 12, 15, 40);
    let run = |k: usize| {
        let mut engine = engine_for(&paper, k, 17);
        let trace = run_experiment(&mut engine, &paper.script());
        (trace.reshaping_rounds(), trace.reliability())
    };
    let (_t2, r2) = run(2);
    let (t4, r4) = run(4);
    let (t8, r8) = run(8);
    assert!(t4.is_some() && t8.is_some());
    // Reliability ordering is a strong statistical signal even in 1 run.
    assert!(
        r2 < r4 + 0.05,
        "K=2 ({r2}) should not beat K=4 ({r4}) by much"
    );
    assert!(r8 > r2, "K=8 ({r8}) must beat K=2 ({r2})");
    assert!(r8 > 0.985, "K=8 reliability {r8}");
}

#[test]
fn deterministic_replay() {
    let paper = paper();
    let run = || {
        let mut engine = engine_for(&paper, 4, 99);
        run_script(&mut engine, &paper)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the exact metric history");
}
