//! Fault-tolerance integration tests beyond the paper's single-blast
//! scenario: repeated catastrophes, continuous churn, and combined
//! churn + regional failure.

use polystyrene_repro::prelude::*;

fn engine(cols: usize, rows: usize, k: usize, seed: u64) -> Engine<Torus2> {
    let mut cfg = EngineConfig::default();
    cfg.area = (cols * rows) as f64;
    cfg.seed = seed;
    cfg.poly = PolystyreneConfig::builder().replication(k).build();
    Engine::new(
        Torus2::new(cols as f64, rows as f64),
        shapes::torus_grid(cols, rows, 1.0),
        cfg,
    )
}

#[test]
fn survives_two_successive_catastrophes() {
    // Kill the right half, heal, then kill the (original) top half of the
    // survivors' region. 75 % of the founding fleet ends up dead.
    let mut e = engine(16, 16, 6, 1);
    e.run(15);
    e.fail_original_region(shapes::in_right_half(16.0));
    e.run(20);
    let after_first = *e.history().last().unwrap();
    assert!(after_first.homogeneity < after_first.reference_homogeneity);

    e.fail_original_region(|p: &[f64; 2]| p[1] >= 8.0);
    assert_eq!(e.alive_count(), 64);
    e.run(30);
    let after_second = *e.history().last().unwrap();
    assert!(
        after_second.homogeneity < 1.5 * after_second.reference_homogeneity,
        "second catastrophe not absorbed: {} vs H {}",
        after_second.homogeneity,
        after_second.reference_homogeneity
    );
    // K=6 over two 50% blasts: most points still alive.
    assert!(after_second.surviving_points > 0.85);
}

#[test]
fn rides_out_continuous_churn() {
    let mut e = engine(16, 8, 4, 2);
    e.run(12);
    // 5 % of the fleet dies every 3 rounds for 10 waves (~40 % attrition).
    for _ in 0..10 {
        e.fail_random_fraction(0.05);
        e.run(3);
    }
    e.run(10);
    let m = *e.history().last().unwrap();
    assert!(m.alive_nodes < 100 && m.alive_nodes > 60);
    assert!(
        m.homogeneity < 1.3 * m.reference_homogeneity,
        "churn broke the shape: {} vs H {}",
        m.homogeneity,
        m.reference_homogeneity
    );
    // Ten compounding 5 % waves with only 3 rounds of re-replication in
    // between lose a few percent of points per wave tail; ~0.85+ survival
    // is the expected regime for K = 4 (a single 50 % blast keeps ~0.97).
    assert!(
        m.surviving_points > 0.82,
        "churn lost points: {}",
        m.surviving_points
    );
}

#[test]
fn churn_then_regional_blast() {
    let mut e = engine(16, 8, 6, 3);
    e.run(12);
    e.fail_random_fraction(0.2);
    e.run(6);
    e.fail_original_region(shapes::in_right_half(16.0));
    e.run(25);
    let m = *e.history().last().unwrap();
    assert!(
        m.homogeneity < 1.3 * m.reference_homogeneity,
        "combined failure not absorbed: {} vs H {}",
        m.homogeneity,
        m.reference_homogeneity
    );
}

#[test]
fn single_survivor_holds_the_whole_shape_memory() {
    // Extreme case: kill everyone except one column. The survivors'
    // ghosts must carry a large share of the shape.
    let mut e = engine(8, 4, 8, 4);
    e.run(15);
    e.fail_original_region(|p: &[f64; 2]| p[0] >= 1.0);
    assert_eq!(e.alive_count(), 4);
    e.run(20);
    let m = *e.history().last().unwrap();
    // With K=8 and only 4 survivors, each point needed one of its 9
    // copies to land on those 4 nodes; expect a meaningful fraction.
    assert!(
        m.surviving_points > 0.5,
        "too little of the shape survived: {}",
        m.surviving_points
    );
    // Every surviving point has been reactivated into someone's guests.
    let guests_total: usize = e
        .alive_ids()
        .iter()
        .map(|&id| e.poly_state(id).unwrap().guests.len())
        .sum();
    assert!(guests_total as f64 >= 32.0 * m.surviving_points - 1.0);
}

#[test]
fn evolving_shape_is_tracked() {
    // Paper footnote 1: the target shape may keep evolving. Shift the
    // whole torus shape by a quarter turn and verify nodes follow.
    let mut e = engine(16, 8, 4, 5);
    e.run(15);
    assert!(e.compute_metrics().homogeneity < 0.1);
    let space = *e.space();
    e.morph_shape(|p: &[f64; 2]| space.normalize([p[0] + 4.0, p[1]]));
    // Immediately after the morph, published positions lag the points...
    let lag = e.compute_metrics().homogeneity;
    assert!(lag < 1e-9 + 4.0 + 1e-9, "morph moved points at most 4 away");
    // ...but projection re-aligns them the very next round.
    e.run(3);
    let m = *e.history().last().unwrap();
    assert!(
        m.homogeneity < 0.1,
        "nodes failed to follow the morphed shape: {}",
        m.homogeneity
    );
}
