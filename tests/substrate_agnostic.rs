//! Substrate-agnosticism: the paper claims Polystyrene "can be plugged
//! into any decentralized topology construction algorithm" (Sec. II-C).
//! The simulator wires it over T-Man; this test drives the identical
//! Polystyrene state machines over **Vicinity** with a hand-rolled cycle
//! driver and verifies the same shape-recovery behavior.

use polystyrene_repro::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

struct MiniNode {
    vicinity: Vicinity<Torus2>,
    poly: PolyState<[f64; 2]>,
}

struct MiniDriver {
    space: Torus2,
    cfg: PolystyreneConfig,
    nodes: Vec<Option<MiniNode>>,
    originals: Vec<DataPoint<[f64; 2]>>,
    failed: HashSet<NodeId>,
    rng: StdRng,
}

impl MiniDriver {
    fn new(cols: usize, rows: usize, seed: u64) -> Self {
        let space = Torus2::new(cols as f64, rows as f64);
        let shape = shapes::torus_grid(cols, rows, 1.0);
        let cfg = PolystyreneConfig::builder().replication(4).build();
        let mut rng = StdRng::seed_from_u64(seed);
        let originals: Vec<DataPoint<[f64; 2]>> = shape
            .iter()
            .enumerate()
            .map(|(i, &p)| DataPoint::new(PointId::new(i as u64), p))
            .collect();
        let n = shape.len();
        let nodes = (0..n)
            .map(|i| {
                let mut vicinity = Vicinity::new(
                    space,
                    VicinityConfig {
                        view_cap: 20,
                        m: 8,
                        random_partner_probability: 0.2,
                    },
                );
                let contacts: Vec<Descriptor<[f64; 2]>> = (0..8)
                    .map(|_| {
                        let j = rng.random_range(0..n);
                        Descriptor::new(NodeId::new(j as u64), shape[j])
                    })
                    .filter(|d| d.id.index() != i)
                    .collect();
                vicinity.integrate(NodeId::new(i as u64), &shape[i], &contacts);
                Some(MiniNode {
                    vicinity,
                    poly: PolyState::with_initial_point(originals[i].clone()),
                })
            })
            .collect();
        Self {
            space,
            cfg,
            nodes,
            originals,
            failed: HashSet::new(),
            rng,
        }
    }

    fn alive(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_some())
            .collect()
    }

    fn round(&mut self) {
        let mut order = self.alive();
        order.shuffle(&mut self.rng);
        // Vicinity gossip: exchange buffers pairwise.
        for &i in &order {
            if self.nodes[i].is_none() {
                continue;
            }
            let me = NodeId::new(i as u64);
            let (partner, my_pos) = {
                let node = self.nodes[i].as_mut().unwrap();
                node.vicinity.begin_round();
                let failed = &self.failed;
                node.vicinity.purge_failed(&|id| failed.contains(&id));
                let pos = node.poly.pos;
                (node.vicinity.select_partner(&pos, &mut self.rng), pos)
            };
            let Some(partner) = partner else { continue };
            let j = partner.index();
            if i == j || self.nodes[j].is_none() {
                continue;
            }
            let partner_pos = self.nodes[j].as_ref().unwrap().poly.pos;
            let (req, my_pos2) = {
                let node = self.nodes[i].as_mut().unwrap();
                let req = node.vicinity.prepare_message(
                    Descriptor::new(me, my_pos),
                    &partner_pos,
                    &mut self.rng,
                );
                (req, my_pos)
            };
            let reply = {
                let other = self.nodes[j].as_mut().unwrap();
                let reply = other.vicinity.prepare_message(
                    Descriptor::new(partner, partner_pos),
                    &my_pos2,
                    &mut self.rng,
                );
                other.vicinity.integrate(partner, &partner_pos, &req);
                reply
            };
            let node = self.nodes[i].as_mut().unwrap();
            node.vicinity.integrate(me, &my_pos, &reply);
        }
        // Polystyrene: recovery, backup, migration — same state machines
        // as the T-Man deployment.
        for &i in &order {
            if self.nodes[i].is_none() {
                continue;
            }
            let failed = self.failed.clone();
            let node = self.nodes[i].as_mut().unwrap();
            polystyrene_repro::core::recovery::recover(&mut node.poly, |id| failed.contains(&id));
        }
        let alive_now = self.alive();
        for &i in &order {
            if self.nodes[i].is_none() {
                continue;
            }
            let me = NodeId::new(i as u64);
            let failed = self.failed.clone();
            let mut pool: Vec<NodeId> = alive_now
                .iter()
                .map(|&j| NodeId::new(j as u64))
                .filter(|&id| id != me)
                .collect();
            pool.shuffle(&mut self.rng);
            let mut pool_iter = pool.into_iter();
            let pushes = {
                let node = self.nodes[i].as_mut().unwrap();
                plan_backups(
                    &mut node.poly,
                    me,
                    self.cfg.replication,
                    |id| failed.contains(&id),
                    || pool_iter.next(),
                    &mut Vec::new(),
                )
            };
            for push in pushes {
                if let Some(target) = self.nodes[push.target.index()].as_mut() {
                    target.poly.store_ghosts(me, push.points);
                }
            }
        }
        for &i in &order {
            if self.nodes[i].is_none() {
                continue;
            }
            let q = {
                let node = self.nodes[i].as_ref().unwrap();
                let mut cands: Vec<NodeId> = node
                    .vicinity
                    .closest(&node.poly.pos, self.cfg.psi)
                    .into_iter()
                    .map(|d| d.id)
                    .collect();
                cands.retain(|id| !self.failed.contains(id) && id.index() != i);
                if cands.is_empty() {
                    continue;
                }
                cands[self.rng.random_range(0..cands.len())]
            };
            let j = q.index();
            if self.nodes[j].is_none() {
                continue;
            }
            let (a, b) = if i < j {
                let (l, r) = self.nodes.split_at_mut(j);
                (l[i].as_mut().unwrap(), r[0].as_mut().unwrap())
            } else {
                let (l, r) = self.nodes.split_at_mut(i);
                (r[0].as_mut().unwrap(), l[j].as_mut().unwrap())
            };
            migrate_exchange(
                &self.space,
                &self.cfg,
                &mut a.poly,
                &mut b.poly,
                &mut self.rng,
            );
        }
    }

    fn fail_right_half(&mut self, width: f64) {
        for i in 0..self.originals.len() {
            if self.originals[i].pos[0] >= width / 2.0 {
                self.nodes[i] = None;
                self.failed.insert(NodeId::new(i as u64));
            }
        }
    }

    fn homogeneity(&self) -> f64 {
        let alive = self.alive();
        let mut acc = 0.0;
        for point in &self.originals {
            let mut best = f64::INFINITY;
            let mut held = false;
            for &i in &alive {
                let node = self.nodes[i].as_ref().unwrap();
                if node.poly.guests.iter().any(|g| g.id == point.id) {
                    held = true;
                    best = best.min(self.space.distance(&point.pos, &node.poly.pos));
                }
            }
            if !held {
                for &i in &alive {
                    let node = self.nodes[i].as_ref().unwrap();
                    best = best.min(self.space.distance(&point.pos, &node.poly.pos));
                }
            }
            acc += best;
        }
        acc / self.originals.len() as f64
    }
}

#[test]
fn polystyrene_reshapes_over_vicinity_too() {
    let mut driver = MiniDriver::new(16, 8, 7);
    for _ in 0..15 {
        driver.round();
    }
    assert!(
        driver.homogeneity() < 0.1,
        "Vicinity stack failed to converge"
    );

    driver.fail_right_half(16.0);
    let at_failure = driver.homogeneity();
    assert!(
        at_failure > 1.0,
        "failure should tear the shape: {at_failure}"
    );

    for _ in 0..25 {
        driver.round();
    }
    let healed = driver.homogeneity();
    let reference = 0.5 * (128.0f64 / 64.0).sqrt();
    assert!(
        healed < reference * 1.3,
        "Polystyrene-over-Vicinity failed to reshape: {healed} (H = {reference})"
    );
}
